"""The lint engine: walk files, parse, run rules, apply suppressions.

:func:`lint_paths` is the one entry point — the CLI, the CI job and the
test suite all route through it, so they can never disagree about what a
"clean" run means::

    from repro.staticcheck import lint_paths

    report = lint_paths(["src"], snapshot_path="api_snapshot.json")
    print(report.render_text())
    raise SystemExit(report.exit_code())

The report separates **unsuppressed** findings (which gate: any of them
makes :meth:`LintReport.exit_code` nonzero) from **suppressed** ones
(visible in the JSON record so a suppression can never silently hide —
CI artifacts show exactly what was waived and where) and **parse errors**
(a file the linter cannot read is a finding, not an excuse).
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.memo import LintMemo

from repro.staticcheck.model import Finding, ModuleContext, ProjectContext
from repro.staticcheck.registry import available_rules, rule_info
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = ["LintReport", "lint_paths", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".pytest_cache"}


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise ValidationError(f"no such file or directory: {path!r}")
    seen = set()
    unique = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


@dataclass
class LintReport:
    """Everything one lint invocation learned."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    rule_ids: List[str] = field(default_factory=list)
    n_files: int = 0

    # ------------------------------------------------------------------ #
    @property
    def gating(self) -> List[Finding]:
        """Findings that fail the run: every unsuppressed one, parse errors included."""
        return sorted(self.parse_errors + self.findings, key=Finding.sort_key)

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.gating:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def exit_code(self) -> int:
        """``0`` clean, ``1`` any unsuppressed finding (the CI gate)."""
        return 1 if self.gating else 0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """The ``--format json`` document (stable schema, sorted findings)."""
        return {
            "tool": "repro-lint",
            "version": package_version(),
            "rules": list(self.rule_ids),
            "n_files": self.n_files,
            "summary": {
                "gating": len(self.gating),
                "suppressed": len(self.suppressed),
                "parse_errors": len(self.parse_errors),
                "by_severity": self.counts_by_severity(),
            },
            "findings": [f.to_dict() for f in self.gating],
            "suppressed_findings": [
                f.to_dict() for f in sorted(self.suppressed, key=Finding.sort_key)
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self, show_suppressed: bool = False) -> str:
        """Human rendering: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.gating]
        if show_suppressed:
            lines.extend(f.render() for f in sorted(self.suppressed, key=Finding.sort_key))
        counts = self.counts_by_severity()
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in sorted(counts)) or "clean"
        lines.append(
            f"repro-lint: {summary} in {self.n_files} file(s) "
            f"({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def _select_rules(rule_ids: Optional[Iterable[str]]):
    if rule_ids is None:
        return [rule_info(rule_id) for rule_id in available_rules()]
    return [rule_info(rule_id) for rule_id in rule_ids]


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    snapshot_path: Optional[str] = None,
    memo: Optional["LintMemo"] = None,
) -> LintReport:
    """Lint *paths* (files and/or directories) and return the report.

    ``rule_ids`` restricts the run to the named rules (default: every
    registered rule); unknown ids fail fast with a did-you-mean, exactly
    like unknown backends.  ``snapshot_path`` feeds project-scope rules —
    the ``api-snapshot`` rule is skipped when it is ``None`` (module-scope
    fixture runs in the test suite) and enforced when given (the CI gate).
    ``memo`` (a :class:`repro.staticcheck.memo.LintMemo`) re-uses per-file
    module-rule results keyed on content + rule fingerprints; project
    rules always run live (their unit of analysis is the corpus, not a
    file), and a memo hit still parses the file when project rules are in
    the run, since they need its AST.
    """
    infos = _select_rules(rule_ids)
    report = LintReport(rule_ids=[info.id for info in infos])
    module_rules = [info for info in infos if info.scope == "module"]
    project_rules = [info for info in infos if info.scope == "project"]

    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        report.n_files += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(Finding(
                message=f"cannot parse: {exc}", line=0, col=0,
                rule="parse-error", severity="error", path=path,
            ))
            continue

        cached = None
        memo_key = None
        if memo is not None:
            memo_key = memo.key(source, module_rules)
            cached = memo.load(memo_key)

        context = None
        if project_rules or cached is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                line = getattr(exc, "lineno", 0) or 0
                report.parse_errors.append(Finding(
                    message=f"cannot parse: {exc}", line=line, col=0,
                    rule="parse-error", severity="error", path=path,
                ))
                continue
            context = ModuleContext(path=path, source=source, tree=tree)
            contexts.append(context)

        if cached is not None:
            file_findings, file_suppressed = cached
            report.findings.extend(replace(f, path=path) for f in file_findings)
            report.suppressed.extend(replace(f, path=path) for f in file_suppressed)
            continue

        file_findings = []
        file_suppressed = []
        for info in module_rules:
            for draft in info.func(context):
                finding = draft.stamped(
                    rule=info.id, severity=info.severity, path=path
                )
                if context.is_suppressed(finding.line, info.id):
                    file_suppressed.append(replace(finding, suppressed=True))
                else:
                    file_findings.append(finding)
        report.findings.extend(file_findings)
        report.suppressed.extend(file_suppressed)
        if memo is not None and memo_key is not None:
            memo.store(memo_key, file_findings, file_suppressed)

    if project_rules:
        project = ProjectContext(
            paths=list(paths),
            modules=contexts,
            options={"snapshot_path": snapshot_path},
        )
        context_by_path = {context.path: context for context in contexts}
        for info in project_rules:
            for draft in info.func(project):
                finding = draft.stamped(
                    rule=info.id, severity=info.severity,
                    path=draft.path or (snapshot_path or ""),
                )
                # project rules anchor findings in real modules too
                # (thread-escape, kernel-determinism) — honor at-site
                # suppressions exactly like module-scope findings
                context = context_by_path.get(finding.path)
                if context is not None and context.is_suppressed(finding.line, info.id):
                    report.suppressed.append(replace(finding, suppressed=True))
                else:
                    report.findings.append(finding)

    report.findings.sort(key=Finding.sort_key)
    return report

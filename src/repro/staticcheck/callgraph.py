"""Project-wide call graph: the whole-program substrate of ``repro-lint``.

The per-file rules in :mod:`repro.staticcheck.rules` see one module at a
time, which is exactly the wrong unit for concurrency bugs: a callable
handed to ``shared_thread_pool(...).submit`` in one file mutates state
defined in another, and neither file looks wrong on its own.  This module
builds the missing global view:

* **Nodes** — every function, method and nested function under the linted
  tree, keyed by module-qualified name (``repro.core.cache.ResultCache.get``,
  ``repro.analysisgraph.execute._run_ready_set.<locals>.compute``).
* **Edges** — resolved call relationships.  Resolution is deliberately
  syntactic but annotation-aware: plain names resolve through the lexical
  scope chain and the import table; ``self.method()`` resolves within the
  enclosing class and its project-local bases; ``obj.method()`` resolves
  through the receiver's inferred type (parameter annotations, ``self.x:
  T`` attribute annotations, ``x = ClassName(...)`` constructor
  assignments and annotated return types), falling back to a
  unique-method-name match when exactly one project class defines the
  method.
* **Entry points** — functions and classes carrying registry decorators
  (``register_op`` / ``register_reduce_op`` / ``register_backend`` /
  ``register_rule``) are marked: they are called by machinery, not by
  name, so reachability analyses must treat them as roots.
* **Submission sites** — every place a callable escapes onto another
  thread: ``pool.submit(fn)``, ``loop.run_in_executor(executor, fn)``
  (including the ``contextvars`` idiom ``run_in_executor(executor,
  context.run, fn)``), ``future.add_done_callback(fn)`` and
  ``threading.Thread(target=fn)``.  The ``thread-escape`` rule seeds its
  reachability sweep from these.

The graph serializes to a **byte-deterministic** JSON artifact
(``callgraph.json`` at the repo root, regenerated with ``repro-lint
--write-callgraph`` and diff-gated in CI): modules are visited in sorted
path order, every mapping is emitted with sorted keys and every edge list
is sorted, so two runs over the same tree produce identical bytes.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.model import ModuleContext, ProjectContext
from repro.utils.version import package_version

__all__ = [
    "CallGraph",
    "FunctionNode",
    "SubmissionSite",
    "build_call_graph",
    "graph_from_modules",
    "graph_for_project",
    "module_name_for_path",
    "write_callgraph",
]

#: conventional artifact location (repo root), mirroring ``api_snapshot.json``
DEFAULT_CALLGRAPH = "callgraph.json"

#: decorator base names that mark a def (or a whole class) as machinery-invoked
_ENTRY_DECORATORS = {
    "register_op",
    "register_reduce_op",
    "register_backend",
    "register_rule",
}

#: attribute names whose call hands a positional callable to another thread
_SUBMIT_APIS = ("submit", "run_in_executor", "add_done_callback")


def module_name_for_path(path: str) -> str:
    """Dotted module name for *path*, anchored at its package root.

    Walks parent directories while an ``__init__.py`` is present, so
    ``src/repro/core/cache.py`` names ``repro.core.cache`` regardless of
    where the lint run was rooted, and a fixture package in a temporary
    directory names itself consistently.  A file outside any package is
    just its stem.
    """
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    if parts[0] == "__init__":
        parts = parts[1:] or [parts[0]]
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class FunctionNode:
    """One def in the project: the unit of reachability analysis."""

    qualname: str
    module: str
    path: str
    line: int
    #: ``"function"`` (module level), ``"method"``, or ``"nested"``
    kind: str
    #: qualname of the owning class for methods, else ``None``
    class_qualname: Optional[str]
    decorators: Tuple[str, ...]
    #: registry-decorated (directly or via a decorated class)
    is_entry: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "kind": self.kind,
            "class": self.class_qualname,
            "decorators": list(self.decorators),
            "entry": self.is_entry,
        }


@dataclass(frozen=True)
class SubmissionSite:
    """One place a callable escapes the submitting thread."""

    #: qualname of the function containing the submission
    caller: str
    #: which API carried it: ``submit`` / ``run_in_executor`` / ...
    api: str
    #: resolved qualname of the escaping callable (``None`` if unresolved)
    callee: Optional[str]
    path: str
    line: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "caller": self.caller,
            "api": self.api,
            "callee": self.callee,
            "path": self.path,
            "line": self.line,
        }


@dataclass
class _ClassRecord:
    """Internal per-class index: methods, bases and inferred attribute types."""

    qualname: str
    module: str
    #: method name → function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: raw dotted base names (resolved to qualnames in the link pass)
    raw_bases: Tuple[str, ...] = ()
    bases: Tuple[str, ...] = ()
    #: attribute name → class qualname (from annotations / ctor assignments)
    attr_types: Dict[str, str] = field(default_factory=dict)
    node: Optional[ast.ClassDef] = None
    is_entry: bool = False


class _ModuleRecord:
    """Internal per-module index built in the definition pass."""

    def __init__(self, context: ModuleContext, modname: str):
        self.context = context
        self.modname = modname
        #: module-level name → qualname of the def/class it binds
        self.top_defs: Dict[str, str] = {}

    @property
    def imports(self) -> Dict[str, str]:
        return self.context.imports


class CallGraph:
    """The linked whole-program view.  Build via :func:`build_call_graph`."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, _ClassRecord] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self.submission_sites: List[SubmissionSite] = []
        self.modules: List[str] = []
        #: function qualname → its AST node (for rules; not serialized)
        self._def_nodes: Dict[str, ast.AST] = {}
        #: function qualname → inferred local/param types (name → class qual)
        self._local_types: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    def function_ast(self, qualname: str) -> Optional[ast.AST]:
        """The def node behind a :class:`FunctionNode` (in-memory only)."""
        return self._def_nodes.get(qualname)

    def local_types(self, qualname: str) -> Dict[str, str]:
        """Inferred ``local name → class qualname`` map for a function."""
        return self._local_types.get(qualname, {})

    def entry_points(self) -> List[str]:
        """Qualnames of registry-decorated functions/methods, sorted."""
        return sorted(q for q, node in self.functions.items() if node.is_entry)

    def submission_roots(self) -> List[str]:
        """Resolved callables escaping to other threads, sorted + unique."""
        return sorted({s.callee for s in self.submission_sites if s.callee})

    def reachable(self, roots: Iterable[str]) -> Dict[str, str]:
        """BFS closure over call edges: reached qualname → its root.

        The root attribution (first root to reach each node, in sorted
        root order) lets rules explain *why* a function is considered
        thread-reachable.
        """
        reached: Dict[str, str] = {}
        frontier: List[Tuple[str, str]] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in reached:
                reached[root] = root
                frontier.append((root, root))
        while frontier:
            current, root = frontier.pop(0)
            for callee in self.edges.get(current, ()):
                if callee not in reached and callee in self.functions:
                    reached[callee] = root
                    frontier.append((callee, root))
        return reached

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The serializable artifact (stable schema, fully sorted)."""
        edges = {
            caller: list(callees)
            for caller, callees in sorted(self.edges.items())
            if callees
        }
        n_edges = sum(len(v) for v in edges.values())
        return {
            "tool": "repro-callgraph",
            "format": 1,
            "version": package_version(),
            "summary": {
                "n_modules": len(self.modules),
                "n_functions": len(self.functions),
                "n_edges": n_edges,
                "n_entry_points": len(self.entry_points()),
                "n_submission_sites": len(self.submission_sites),
            },
            "modules": list(self.modules),
            "functions": {
                qual: node.to_dict() for qual, node in sorted(self.functions.items())
            },
            "edges": edges,
            "entry_points": self.entry_points(),
            "submission_sites": [
                site.to_dict()
                for site in sorted(
                    self.submission_sites,
                    key=lambda s: (s.path, s.line, s.api, s.caller, s.callee or ""),
                )
            ],
        }

    def to_json(self) -> str:
        """Byte-deterministic JSON rendering (trailing newline included)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------- #
# construction
# ---------------------------------------------------------------------- #

def _decorator_names(node: ast.AST, context: ModuleContext) -> Tuple[str, ...]:
    names: List[str] = []
    for decorator in getattr(node, "decorator_list", []):
        expr = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = context.dotted_name(expr)
        if dotted:
            names.append(dotted)
    return tuple(names)


def _is_entry_decorated(decorators: Tuple[str, ...]) -> bool:
    return any(d.split(".")[-1] in _ENTRY_DECORATORS for d in decorators)


def _annotation_dotted(node: Optional[ast.AST], context: ModuleContext) -> Optional[str]:
    """The class-ish dotted name inside an annotation, unwrapping
    ``Optional[X]`` / ``"X"`` string forms / single-parameter generics."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = context.dotted_name(node.value)
        if head and head.split(".")[-1] in ("Optional", "Final", "ClassVar"):
            return _annotation_dotted(node.slice, context)
        return None
    return context.dotted_name(node)


class _Builder:
    """Three passes: index definitions, link classes, resolve calls."""

    def __init__(self, contexts: Sequence[ModuleContext]):
        self.graph = CallGraph()
        self.records: List[_ModuleRecord] = []
        #: method name → sorted class qualnames defining it (fallback lookup)
        self.method_index: Dict[str, List[str]] = {}
        #: function qualname → return-annotation class qualname
        self.return_types: Dict[str, str] = {}
        #: resolved project calls: (caller qualname, callee qualname, Call node)
        self.call_records: List[Tuple[str, str, ast.Call]] = []
        #: submission sites whose callable is a parameter of the caller:
        #: (index into graph.submission_sites, parameter name)
        self.forwarded_sites: List[Tuple[int, str]] = []
        ordered = sorted(contexts, key=lambda c: c.posix_path)
        for context in ordered:
            record = _ModuleRecord(context, module_name_for_path(context.path))
            self.records.append(record)
            self.graph.modules.append(context.posix_path)

    # -------------------------------------------------------------- #
    def build(self) -> CallGraph:
        for record in self.records:
            self._index_module(record)
        self._link_classes()
        for record in self.records:
            self._resolve_module(record)
        self._resolve_forwarded_sites()
        return self.graph

    # ---------------------------- pass 1 --------------------------- #
    def _index_module(self, record: _ModuleRecord) -> None:
        context = record.context

        def register_function(node, qualprefix: str, kind: str,
                              class_qual: Optional[str],
                              class_entry: bool) -> str:
            qual = f"{qualprefix}.{node.name}"
            decorators = _decorator_names(node, context)
            info = FunctionNode(
                qualname=qual,
                module=record.modname,
                path=context.posix_path,
                line=node.lineno,
                kind=kind,
                class_qualname=class_qual,
                decorators=decorators,
                is_entry=class_entry or _is_entry_decorated(decorators),
            )
            self.graph.functions[qual] = info
            self.graph._def_nodes[qual] = node
            return qual

        def walk_class(node: ast.ClassDef, qualprefix: str) -> None:
            class_qual = f"{qualprefix}.{node.name}"
            decorators = _decorator_names(node, context)
            cls = _ClassRecord(
                qualname=class_qual,
                module=record.modname,
                raw_bases=tuple(
                    d for d in (context.dotted_name(b) for b in node.bases) if d
                ),
                node=node,
                is_entry=_is_entry_decorated(decorators),
            )
            self.graph.classes[class_qual] = cls
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qual = register_function(
                        child, class_qual, "method", class_qual, cls.is_entry
                    )
                    cls.methods[child.name] = method_qual
                    walk_function(child, method_qual)
                elif isinstance(child, ast.ClassDef):
                    walk_class(child, class_qual)
                elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                    dotted = _annotation_dotted(child.annotation, context)
                    if dotted:
                        cls.attr_types.setdefault(child.target.id, dotted)

        def walk_function(node, qualprefix: str) -> None:
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if self._direct_parent_function(node, child):
                        nested_qual = register_function(
                            child, f"{qualprefix}.<locals>", "nested", None, False
                        )
                        walk_function(child, nested_qual)

        for statement in record.context.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = register_function(
                    statement, record.modname, "function", None, False
                )
                record.top_defs[statement.name] = qual
                walk_function(statement, qual)
            elif isinstance(statement, ast.ClassDef):
                walk_class(statement, record.modname)
                record.top_defs[statement.name] = f"{record.modname}.{statement.name}"

    @staticmethod
    def _direct_parent_function(parent: ast.AST, child: ast.AST) -> bool:
        """True when *child* is nested in *parent* with no def/class between."""
        found = [False]

        class _Scan(ast.NodeVisitor):
            def generic_visit(self, node: ast.AST) -> None:
                if node is child:
                    found[0] = True
                    return
                if node is not parent and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    return  # do not descend into inner scopes
                ast.NodeVisitor.generic_visit(self, node)

        _Scan().visit(parent)
        return found[0]

    # ---------------------------- pass 2 --------------------------- #
    def _link_classes(self) -> None:
        #: class local/dotted name → qualname, per module
        for qual in sorted(self.graph.classes):
            cls = self.graph.classes[qual]
            for method_name in sorted(cls.methods):
                self.method_index.setdefault(method_name, []).append(
                    cls.qualname
                )
        for record in self.records:
            module_classes = {
                qual for qual in self.graph.classes
                if self.graph.classes[qual].module == record.modname
            }
            for qual in sorted(module_classes):
                cls = self.graph.classes[qual]
                resolved: List[str] = []
                for raw in cls.raw_bases:
                    base = self._resolve_class_name(raw, record)
                    if base:
                        resolved.append(base)
                cls.bases = tuple(resolved)
        # return-annotation types (needs class resolution)
        for record in self.records:
            for qual, node in sorted(self.graph._def_nodes.items()):
                info = self.graph.functions[qual]
                if info.module != record.modname:
                    continue
                returns = getattr(node, "returns", None)
                dotted = _annotation_dotted(returns, record.context)
                if dotted:
                    resolved_class = self._resolve_class_name(dotted, record)
                    if resolved_class:
                        self.return_types[qual] = resolved_class
        # constructor-inferred attribute types (self.x = ClassName(...) /
        # self.x: T = ... in __init__)
        for record in self.records:
            for qual in sorted(self.graph.classes):
                cls = self.graph.classes[qual]
                if cls.module != record.modname or cls.node is None:
                    continue
                init_qual = cls.methods.get("__init__")
                init_node = self.graph._def_nodes.get(init_qual) if init_qual else None
                if init_node is None:
                    continue
                for child in ast.walk(init_node):
                    target = None
                    value = None
                    if isinstance(child, ast.AnnAssign):
                        target = child.target
                        dotted = _annotation_dotted(child.annotation, record.context)
                        value = None
                        if (
                            dotted
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            resolved_class = self._resolve_class_name(dotted, record)
                            if resolved_class:
                                cls.attr_types.setdefault(target.attr, resolved_class)
                        continue
                    if isinstance(child, ast.Assign) and len(child.targets) == 1:
                        target = child.targets[0]
                        value = child.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(value, ast.Call)
                    ):
                        inferred = self._call_result_type(value, record)
                        if inferred:
                            cls.attr_types.setdefault(target.attr, inferred)

    def _resolve_class_name(self, dotted: str, record: _ModuleRecord) -> Optional[str]:
        """Map a dotted (import-resolved) name to a project class qualname."""
        if dotted in self.graph.classes:
            return dotted
        local = record.top_defs.get(dotted)
        if local and local in self.graph.classes:
            return local
        # an imported name already resolves through ModuleContext.imports to
        # a fully dotted origin; the bare-name case remains (same-module ref
        # written before definition, or a conditional import)
        candidate = f"{record.modname}.{dotted}"
        if candidate in self.graph.classes:
            return candidate
        leaf = dotted.split(".")[-1]
        matches = sorted(
            qual for qual in self.graph.classes
            if qual.split(".")[-1] == leaf
        )
        if len(matches) == 1:
            return matches[0]
        return None

    def _call_result_type(self, call: ast.Call, record: _ModuleRecord) -> Optional[str]:
        """Type of a call's result: constructor → the class; annotated fn →
        its declared return class."""
        callees = self._resolve_callable(call.func, record, None, [], {})
        for callee in callees:
            if callee in self.graph.classes:
                return callee
            if callee in self.return_types:
                return self.return_types[callee]
            # Class.__init__ edge form
            if callee.endswith(".__init__"):
                owner = callee[: -len(".__init__")]
                if owner in self.graph.classes:
                    return owner
        return None

    def _resolve_method(self, class_qual: str, method: str) -> Optional[str]:
        """Look *method* up on a class, then its project-local bases."""
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.graph.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            queue.extend(cls.bases)
        return None

    # ---------------------------- pass 3 --------------------------- #
    def _resolve_module(self, record: _ModuleRecord) -> None:
        for qual, node in sorted(self.graph._def_nodes.items()):
            info = self.graph.functions[qual]
            if info.module != record.modname:
                continue
            self._resolve_function(qual, node, record)

    def _scope_chain(self, qual: str) -> List[Dict[str, str]]:
        """Lexical def scopes enclosing *qual*, innermost first.

        Each scope maps a local def name to its qualname; built from the
        qualname structure (``a.b.<locals>.c`` nests inside ``a.b``).
        """
        chain: List[Dict[str, str]] = []
        current = qual
        while True:
            scope: Dict[str, str] = {}
            prefix = f"{current}.<locals>."
            for candidate in self.graph.functions:
                if candidate.startswith(prefix) and "." not in candidate[len(prefix):]:
                    scope[candidate[len(prefix):]] = candidate
            chain.append(scope)
            if ".<locals>." not in current:
                break
            current = current.rsplit(".<locals>.", 1)[0]
        return chain

    def _local_type_table(self, qual: str, node: ast.AST,
                          record: _ModuleRecord) -> Dict[str, str]:
        """name → class qualname for params and simple local assignments."""
        types: Dict[str, str] = {}
        args = getattr(node, "args", None)
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in every:
                dotted = _annotation_dotted(arg.annotation, record.context)
                if dotted:
                    resolved = self._resolve_class_name(dotted, record)
                    if resolved:
                        types[arg.arg] = resolved
        for child in self._own_statements(node):
            if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                dotted = _annotation_dotted(child.annotation, record.context)
                if dotted:
                    resolved = self._resolve_class_name(dotted, record)
                    if resolved:
                        types[child.target.id] = resolved
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name) and isinstance(child.value, ast.Call):
                    inferred = self._call_result_type(child.value, record)
                    if inferred:
                        types[target.id] = inferred
        return types

    @staticmethod
    def _own_statements(node: ast.AST) -> Iterable[ast.AST]:
        """Walk *node*'s body without descending into nested defs/classes."""
        queue = list(ast.iter_child_nodes(node))
        while queue:
            child = queue.pop(0)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield child
            queue.extend(ast.iter_child_nodes(child))

    def _receiver_type(self, expr: ast.AST, record: _ModuleRecord,
                       class_qual: Optional[str],
                       local_types: Dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and class_qual:
                return class_qual
            return local_types.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and class_qual
        ):
            cls = self.graph.classes.get(class_qual)
            if cls is not None:
                seen: Set[str] = set()
                queue = [class_qual]
                while queue:
                    current = queue.pop(0)
                    if current in seen:
                        continue
                    seen.add(current)
                    owner = self.graph.classes.get(current)
                    if owner is None:
                        continue
                    if expr.attr in owner.attr_types:
                        return owner.attr_types[expr.attr]
                    queue.extend(owner.bases)
        if isinstance(expr, ast.Call):
            return self._call_result_type(expr, record)
        return None

    def _resolve_callable(self, expr: ast.AST, record: _ModuleRecord,
                          class_qual: Optional[str],
                          scopes: List[Dict[str, str]],
                          local_types: Dict[str, str]) -> List[str]:
        """Resolve a callable expression to project qualnames (possibly [])."""
        if isinstance(expr, ast.Name):
            for scope in scopes:
                if expr.id in scope:
                    return [scope[expr.id]]
            top = record.top_defs.get(expr.id)
            if top:
                return [top]
            dotted = record.imports.get(expr.id)
            if dotted:
                return self._resolve_dotted(dotted)
            return []
        if isinstance(expr, ast.Attribute):
            # self.method / cls.method
            if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"):
                if class_qual:
                    method = self._resolve_method(class_qual, expr.attr)
                    if method:
                        return [method]
            dotted = record.context.dotted_name(expr)
            if dotted:
                # module attribute (mod.func) or Class.method spelled out
                resolved = self._resolve_dotted(dotted)
                if resolved:
                    return resolved
                head = record.top_defs.get(dotted.split(".")[0])
                if head:
                    resolved = self._resolve_dotted(
                        ".".join([head] + dotted.split(".")[1:])
                    )
                    if resolved:
                        return resolved
            receiver = self._receiver_type(expr.value, record, class_qual, local_types)
            if receiver:
                method = self._resolve_method(receiver, expr.attr)
                if method:
                    return [method]
            # fallback: exactly one project class defines this method name
            owners = self.method_index.get(expr.attr, [])
            if len(owners) == 1:
                method = self._resolve_method(owners[0], expr.attr)
                if method:
                    return [method]
            return []
        return []

    def _resolve_dotted(self, dotted: str) -> List[str]:
        if dotted in self.graph.functions:
            return [dotted]
        if dotted in self.graph.classes:
            ctor = self._resolve_method(dotted, "__init__")
            return [ctor] if ctor else [dotted]
        if "." in dotted:
            head, tail = dotted.rsplit(".", 1)
            if head in self.graph.classes:
                method = self._resolve_method(head, tail)
                if method:
                    return [method]
        return []

    def _submitted_expr(self, call: ast.Call, api: str) -> Optional[ast.AST]:
        """The callable argument escaping through a submission API."""
        args = call.args
        if api == "submit" or api == "add_done_callback":
            return args[0] if args else None
        if api == "run_in_executor":
            if len(args) < 2:
                return None
            fn = args[1]
            # the contextvars idiom: run_in_executor(ex, context.run, fn, ...)
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "run"
                and len(args) >= 3
            ):
                return args[2]
            return fn
        return None

    def _resolve_function(self, qual: str, node: ast.AST,
                          record: _ModuleRecord) -> None:
        info = self.graph.functions[qual]
        scopes = self._scope_chain(qual)
        local_types = self._local_type_table(qual, node, record)
        self.graph._local_types[qual] = local_types
        callees: Set[str] = set()

        def resolve_value(expr: ast.AST) -> List[str]:
            if isinstance(expr, ast.Call):
                # functools.partial(fn, ...) escapes fn
                dotted = record.context.dotted_name(expr.func)
                if dotted and dotted.split(".")[-1] == "partial" and expr.args:
                    return resolve_value(expr.args[0])
                return []
            return self._resolve_callable(
                expr, record, info.class_qualname, scopes, local_types
            )

        param_names = set()
        args = getattr(node, "args", None)
        if args is not None:
            param_names = {
                a.arg
                for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            }

        for child in self._own_statements(node):
            if not isinstance(child, ast.Call):
                continue
            for target in self._resolve_callable(
                child.func, record, info.class_qualname, scopes, local_types
            ):
                callees.add(target)
                self.call_records.append((qual, target, child))
            # thread submissions: record the site and add an async edge
            api: Optional[str] = None
            if isinstance(child.func, ast.Attribute) and child.func.attr in _SUBMIT_APIS:
                api = child.func.attr
            else:
                dotted = record.context.dotted_name(child.func)
                if dotted and dotted.split(".")[-1] == "Thread":
                    api = "Thread"
            if api is None:
                continue
            if api == "Thread":
                escaping: Optional[ast.AST] = None
                for keyword in child.keywords:
                    if keyword.arg == "target":
                        escaping = keyword.value
            else:
                escaping = self._submitted_expr(child, api)
            if escaping is None:
                continue
            resolved = resolve_value(escaping)
            callee = resolved[0] if resolved else None
            self.graph.submission_sites.append(SubmissionSite(
                caller=qual,
                api=api,
                callee=callee,
                path=info.path,
                line=child.lineno,
            ))
            if callee:
                callees.add(callee)
            elif isinstance(escaping, ast.Name) and escaping.id in param_names:
                # fn handed straight through from the caller's caller — e.g.
                # ThreadPool.submit(fn) or _run_ready_set(graph, compute):
                # resolved one level up in _resolve_forwarded_sites
                self.forwarded_sites.append(
                    (len(self.graph.submission_sites) - 1, escaping.id)
                )

        if callees:
            self.graph.edges[qual] = tuple(sorted(callees))

    # ----------------------- forwarded callables ------------------- #
    def _parameter_position(self, qual: str, param: str) -> Optional[int]:
        """Positional index of *param* at project call sites of *qual*
        (``self``/``cls`` excluded for bound-method calls)."""
        node = self.graph._def_nodes.get(qual)
        args = getattr(node, "args", None)
        if args is None:
            return None
        names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        info = self.graph.functions.get(qual)
        if (
            info is not None
            and info.kind == "method"
            and names
            and names[0] in ("self", "cls")
            and not any(d.split(".")[-1] == "staticmethod" for d in info.decorators)
        ):
            names = names[1:]
        if param in names:
            return names.index(param)
        return None

    def _resolve_forwarded_sites(self) -> None:
        """Resolve submissions of the form ``pool.submit(fn)`` where ``fn``
        is a parameter, by inspecting the submitting function's call sites.

        One level of forwarding covers the project's real patterns: the
        analysisgraph ready-set scheduler receives its ``compute`` closure
        as an argument, and every ``ThreadPool.submit(fn)`` forwards the
        callable its caller chose.  Each resolution appends a new site with
        the same location and a filled-in callee.
        """
        if not self.forwarded_sites:
            return
        calls_to: Dict[str, List[Tuple[str, ast.Call]]] = {}
        for caller, callee, call in self.call_records:
            calls_to.setdefault(callee, []).append((caller, call))
        record_by_module = {r.modname: r for r in self.records}
        new_sites: List[SubmissionSite] = []
        superseded: Set[int] = set()
        for site_index, param in self.forwarded_sites:
            site = self.graph.submission_sites[site_index]
            position = self._parameter_position(site.caller, param)
            resolved_here: Set[str] = set()
            for caller, call in calls_to.get(site.caller, []):
                expr: Optional[ast.AST] = None
                if position is not None and position < len(call.args):
                    expr = call.args[position]
                else:
                    for keyword in call.keywords:
                        if keyword.arg == param:
                            expr = keyword.value
                if expr is None:
                    continue
                caller_info = self.graph.functions.get(caller)
                if caller_info is None:
                    continue
                caller_record = record_by_module.get(caller_info.module)
                if caller_record is None:
                    continue
                for target in self._resolve_callable(
                    expr,
                    caller_record,
                    caller_info.class_qualname,
                    self._scope_chain(caller),
                    self.graph._local_types.get(caller, {}),
                ):
                    resolved_here.add(target)
            if resolved_here:
                superseded.add(site_index)
            for target in sorted(resolved_here):
                new_sites.append(SubmissionSite(
                    caller=site.caller,
                    api=site.api,
                    callee=target,
                    path=site.path,
                    line=site.line,
                ))
                self.graph.edges[site.caller] = tuple(sorted(
                    set(self.graph.edges.get(site.caller, ())) | {target}
                ))
        self.graph.submission_sites = [
            site for index, site in enumerate(self.graph.submission_sites)
            if index not in superseded
        ] + new_sites


# ---------------------------------------------------------------------- #
# public constructors
# ---------------------------------------------------------------------- #

def graph_from_modules(modules: Sequence[ModuleContext]) -> CallGraph:
    """Build the graph from already-parsed lint contexts (engine reuse)."""
    return _Builder(modules).build()


def build_call_graph(paths: Sequence[str]) -> CallGraph:
    """Parse every ``.py`` under *paths* and build the project graph.

    Unparsable files are skipped — ``repro-lint`` reports them as parse
    errors through its own pipeline; the graph covers what parses.
    """
    from repro.staticcheck.engine import iter_python_files

    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        contexts.append(ModuleContext(path=path, source=source, tree=tree))
    return graph_from_modules(contexts)


def graph_for_project(project: ProjectContext) -> CallGraph:
    """The (memoized) graph for one lint invocation.

    Project-scope rules share a single build per run; the cache lives in
    ``project.options`` so it expires with the invocation.
    """
    cached = project.options.get("_callgraph")
    if isinstance(cached, CallGraph):
        return cached
    graph = graph_from_modules(project.modules)
    project.options["_callgraph"] = graph
    return graph


def write_callgraph(path: str = DEFAULT_CALLGRAPH,
                    paths: Sequence[str] = ("src",)) -> Dict[str, object]:
    """Regenerate the JSON artifact at *path* and return its document."""
    graph = build_call_graph(paths)
    document = graph.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph.to_json())
    return document

"""repro.staticcheck — the project-invariant static analysis subsystem.

The codebase's correctness rests on contracts no general-purpose linter
knows about: bitwise-deterministic kernels, leak-free shared-memory
lifecycles, non-blocking asyncio handlers, registry-decorated ops with
strict introspectable signatures, and a public API that changes only on
purpose.  ``repro-lint`` (also ``python -m repro.staticcheck``) enforces
them as AST-level rules with the same plugin idiom as backends and ops::

    from repro.staticcheck import lint_paths, register_rule

    report = lint_paths(["src"], snapshot_path="api_snapshot.json")
    print(report.render_text())

Findings are suppressed in place with ``# repro-lint: ignore[rule-id]``
(same line, or a standalone comment on the line above) — every waiver is
visible at the site it waives and in the JSON report CI uploads.

Deliberately **not** exported from the top-level ``repro`` package: the
linter is a development tool, importing it must never be a side effect of
using the library, and the API snapshot it guards should not include the
guard itself.
"""

from repro.staticcheck.apisnapshot import (
    build_api_surface,
    diff_surfaces,
    load_snapshot,
    write_snapshot,
)
from repro.staticcheck.callgraph import (
    CallGraph,
    build_call_graph,
    write_callgraph,
)
from repro.staticcheck.engine import LintReport, iter_python_files, lint_paths
from repro.staticcheck.memo import LintMemo
from repro.staticcheck.model import Finding, ModuleContext, ProjectContext
from repro.staticcheck.registry import (
    RuleInfo,
    available_rules,
    register_rule,
    register_rule_info,
    rule_info,
    rules,
    unregister_rule,
)

__all__ = [
    "CallGraph",
    "Finding",
    "LintMemo",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "RuleInfo",
    "available_rules",
    "build_api_surface",
    "build_call_graph",
    "diff_surfaces",
    "iter_python_files",
    "lint_paths",
    "load_snapshot",
    "register_rule",
    "register_rule_info",
    "rule_info",
    "rules",
    "unregister_rule",
    "write_callgraph",
    "write_snapshot",
]

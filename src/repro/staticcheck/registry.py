"""The lint-rule registry: rules are plugins, exactly like backends and ops.

This mirrors :mod:`repro.core.registry` deliberately — one project, one
plugin idiom.  A rule registers under a kebab-case id with a severity and
scope::

    from repro.staticcheck.registry import register_rule

    @register_rule("my-rule", severity="warning", description="what it guards")
    def check_my_rule(ctx):            # ctx: ModuleContext
        for node in ast.walk(ctx.tree):
            ...
            yield ctx.finding(node, "explain the contract that broke")

and from then on resolves everywhere built-ins do: ``repro-lint --rules``,
``--list-rules`` and the engine's default full set.  ``scope="project"``
rules run once per lint invocation with a
:class:`~repro.staticcheck.model.ProjectContext` instead of once per module
(the API-snapshot check is the canonical example: its unit of analysis is
the package surface, not a file).

Unknown rule ids fail fast with a did-you-mean suggestion, duplicate
registrations are rejected unless ``replace=True`` — the same contracts the
backend registry enforces, now applied to the tool that enforces contracts.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.staticcheck.model import SEVERITIES
from repro.utils.validation import ValidationError

__all__ = [
    "RuleInfo",
    "register_rule",
    "register_rule_info",
    "unregister_rule",
    "rule_info",
    "available_rules",
    "rules",
]

_RULES: Dict[str, "RuleInfo"] = {}
_BUILTINS_LOADED = False


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry: a lint rule plus its declared metadata.

    Parameters
    ----------
    id:
        Kebab-case rule id (what suppression comments and ``--rules`` name).
    func:
        ``func(ModuleContext) -> Iterable[Finding]`` for module-scope rules;
        ``func(ProjectContext) -> Iterable[Finding]`` for project-scope ones.
    severity:
        ``"error"`` | ``"warning"`` | ``"info"`` — stamped onto every
        finding the rule yields.
    description:
        One-line human description for ``repro-lint --list-rules``.
    scope:
        ``"module"`` (run per parsed file) or ``"project"`` (run once per
        lint invocation).
    """

    id: str
    func: Callable
    severity: str = "error"
    description: str = ""
    scope: str = "module"

    @property
    def module(self) -> str:
        """Module the rule is defined in (provenance/CLI)."""
        return getattr(self.func, "__module__", "?")

    def to_dict(self) -> Dict:
        """JSON-safe summary (the ``--list-rules --format json`` payload)."""
        return {
            "id": self.id,
            "severity": self.severity,
            "scope": self.scope,
            "module": self.module,
            "description": self.description,
        }


def _ensure_builtin_rules() -> None:
    """Import the built-in rules package once, registering its rules."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.staticcheck.rules  # noqa: F401  (registers the built-ins)


def register_rule_info(info: RuleInfo, replace: bool = False) -> RuleInfo:
    """Add a fully-built :class:`RuleInfo` to the registry."""
    if not info.id:
        raise ValidationError("rule registration requires a non-empty id")
    if not callable(info.func):
        raise ValidationError(f"rule {info.id!r} must be callable")
    if info.severity not in SEVERITIES:
        raise ValidationError(
            f"rule {info.id!r} severity must be one of {list(SEVERITIES)}, "
            f"got {info.severity!r}"
        )
    if info.scope not in ("module", "project"):
        raise ValidationError(
            f"rule {info.id!r} scope must be 'module' or 'project', got {info.scope!r}"
        )
    if not replace and info.id in _RULES:
        raise ValidationError(
            f"rule {info.id!r} is already registered (by {_RULES[info.id].module}); "
            "pass replace=True to override"
        )
    _RULES[info.id] = info
    return info


def register_rule(
    rule_id: Optional[str] = None,
    *,
    severity: str = "error",
    description: str = "",
    scope: str = "module",
    replace: bool = False,
):
    """Function decorator registering a lint rule under *rule_id*.

    Two forms are accepted, mirroring :func:`repro.core.registry
    .register_backend`::

        @register_rule("async-purity", severity="error")
        def check_async_purity(ctx): ...

        @register_rule                  # the function's name becomes the id
        def my_rule(ctx): ...
    """

    def decorate(func, name):
        about = description
        if not about and func.__doc__:
            about = func.__doc__.strip().splitlines()[0]
        register_rule_info(
            RuleInfo(id=name, func=func, severity=severity,
                     description=about, scope=scope),
            replace=replace,
        )
        return func

    if callable(rule_id):  # bare @register_rule on a function
        func = rule_id
        return decorate(func, func.__name__.replace("_", "-"))
    return lambda func: decorate(func, rule_id or func.__name__.replace("_", "-"))


def unregister_rule(rule_id: str) -> RuleInfo:
    """Remove a rule from the registry, returning its entry (plugin teardown)."""
    _ensure_builtin_rules()
    info = _RULES.pop(rule_id, None)
    if info is None:
        raise ValidationError(f"cannot unregister unknown rule {rule_id!r}")
    return info


def rule_info(rule_id: str) -> RuleInfo:
    """Look up a rule's registry entry, failing fast with a suggestion."""
    _ensure_builtin_rules()
    try:
        return _RULES[str(rule_id)]
    except KeyError:
        known = sorted(_RULES)
        message = f"unknown lint rule {rule_id!r}; available: {known}"
        close = difflib.get_close_matches(str(rule_id), known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ValidationError(message) from None


def available_rules() -> List[str]:
    """Ids of all registered rules, sorted."""
    _ensure_builtin_rules()
    return sorted(_RULES)


def rules(rule_id: Optional[str] = None):
    """Introspect the rule registry.

    With no argument, return every :class:`RuleInfo` sorted by id; with an
    id, return that single entry.
    """
    if rule_id is not None:
        return rule_info(rule_id)
    _ensure_builtin_rules()
    return [_RULES[key] for key in sorted(_RULES)]

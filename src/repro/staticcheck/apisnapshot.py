"""The public-surface snapshot: ``api_snapshot.json`` and its drift check.

The ``repro`` package promises a public API — everything in
``repro.__all__`` plus ``repro.open`` (deliberately kept out of ``__all__``
so ``from repro import *`` never shadows the builtin).  Eight PRs of
growth have changed that surface on purpose many times; this module makes
sure it can never change *by accident*:

* :func:`build_api_surface` introspects the live package into a
  deterministic JSON document — kind, signature, public methods and
  properties, deprecation status per symbol;
* :func:`write_snapshot` checks that document in as ``api_snapshot.json``
  (``repro-lint --write-snapshot``);
* :func:`diff_surfaces` names every drift — added, removed, re-signatured
  or (un)deprecated symbols and methods — and the ``api-snapshot``
  project rule turns each one into a gating finding.

A drift finding is not a prohibition: it is a forced declaration.  The fix
is either to revert the accidental change or to regenerate the snapshot in
the same commit, making the surface change reviewable in the diff.
"""

from __future__ import annotations

import inspect
import json
import os
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "build_api_surface",
    "load_snapshot",
    "write_snapshot",
    "diff_surfaces",
    "SNAPSHOT_FORMAT",
]

#: Bumped when the snapshot document shape itself changes.
SNAPSHOT_FORMAT = 1

#: ``repr`` of object-identity defaults embeds addresses; normalize them so
#: the snapshot is byte-stable across interpreter runs.
_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature_of(obj) -> Optional[str]:
    try:
        return _ADDR_RE.sub(" at 0x…", str(inspect.signature(obj)))
    except (ValueError, TypeError):
        return None


def _is_deprecated(obj) -> bool:
    """Deprecation by docstring convention: the first line says so.

    Every shim in the codebase (``DepthReconstructor``,
    ``reconstruct_file``, ...) opens its docstring with "Deprecated:", so
    the snapshot can track deprecation status without importing private
    warning plumbing.
    """
    doc = inspect.getdoc(obj) or ""
    first = doc.strip().splitlines()[0].lower() if doc.strip() else ""
    return "deprecated" in first


def _describe_class(cls) -> Dict:
    methods: Dict[str, Dict] = {}
    properties: List[str] = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            properties.append(name)
        elif callable(member):
            methods[name] = {"signature": _signature_of(member)}
    return {
        "kind": "class",
        "signature": _signature_of(cls),
        "deprecated": _is_deprecated(cls),
        "methods": methods,
        "properties": sorted(properties),
    }


def _describe(obj) -> Dict:
    if inspect.ismodule(obj):
        return {"kind": "module"}
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {
            "kind": "function",
            "signature": _signature_of(obj),
            "deprecated": _is_deprecated(obj),
        }
    return {"kind": "object", "type": type(obj).__name__}


def build_api_surface() -> Dict:
    """Introspect the live ``repro`` package into the snapshot document."""
    import repro

    names = sorted(set(repro.__all__) | {"open"})
    symbols = {name: _describe(getattr(repro, name)) for name in names}
    return {"module": "repro", "format": SNAPSHOT_FORMAT, "symbols": symbols}


def load_snapshot(path: str) -> Optional[Dict]:
    """The checked-in snapshot, or ``None`` when the file does not exist."""
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_snapshot(path: str, surface: Optional[Dict] = None) -> Dict:
    """Write (or refresh) the snapshot file; returns the written document."""
    surface = surface or build_api_surface()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(surface, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return surface


def _diff_symbol(name: str, old: Dict, new: Dict) -> List[str]:
    drifts: List[str] = []
    if old.get("kind") != new.get("kind"):
        return [f"public symbol {name!r} changed kind: "
                f"{old.get('kind')} → {new.get('kind')}"]
    if old.get("signature") != new.get("signature"):
        drifts.append(
            f"public symbol {name!r} changed signature: "
            f"{old.get('signature')} → {new.get('signature')}"
        )
    if bool(old.get("deprecated")) != bool(new.get("deprecated")):
        state = "deprecated" if new.get("deprecated") else "un-deprecated"
        drifts.append(f"public symbol {name!r} became {state}")
    old_methods, new_methods = old.get("methods", {}), new.get("methods", {})
    for method in sorted(set(old_methods) | set(new_methods)):
        if method not in old_methods:
            drifts.append(f"{name}.{method} is new public API")
        elif method not in new_methods:
            drifts.append(f"{name}.{method} was removed from the public API")
        elif old_methods[method] != new_methods[method]:
            drifts.append(
                f"{name}.{method} changed signature: "
                f"{old_methods[method].get('signature')} → "
                f"{new_methods[method].get('signature')}"
            )
    old_props = old.get("properties", [])
    new_props = new.get("properties", [])
    for prop in sorted(set(old_props) ^ set(new_props)):
        verb = "is new public API" if prop in new_props else "was removed from the public API"
        drifts.append(f"{name}.{prop} (property) {verb}")
    return drifts


def diff_surfaces(snapshot: Dict, current: Dict) -> List[str]:
    """Every human-readable drift between *snapshot* and *current*."""
    if snapshot.get("format") != current.get("format"):
        return [
            f"snapshot format {snapshot.get('format')} != tool format "
            f"{current.get('format')}; regenerate with repro-lint --write-snapshot"
        ]
    drifts: List[str] = []
    old_symbols: Dict = snapshot.get("symbols", {})
    new_symbols: Dict = current.get("symbols", {})
    for name in sorted(set(old_symbols) | set(new_symbols)):
        if name not in old_symbols:
            drifts.append(f"public symbol {name!r} is new (undeclared API addition)")
        elif name not in new_symbols:
            drifts.append(f"public symbol {name!r} disappeared (undeclared API removal)")
        else:
            drifts.extend(_diff_symbol(name, old_symbols[name], new_symbols[name]))
    return drifts


def check_snapshot(path: str) -> Tuple[List[str], bool]:
    """Compare the live surface against the snapshot at *path*.

    Returns ``(drift messages, snapshot_present)``; the ``api-snapshot``
    rule renders each message as one finding.
    """
    snapshot = load_snapshot(path)
    if snapshot is None:
        return (
            [f"API snapshot {path!r} is missing; generate it with "
             "repro-lint --write-snapshot"],
            False,
        )
    return diff_surfaces(snapshot, build_api_surface()), True

"""Setuptools shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel.  This file enables the legacy development install
path (``python setup.py develop`` / ``pip install -e . --no-build-isolation``
falling back to it); all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

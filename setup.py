"""Setuptools shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel.  This file enables the legacy development install
path (``python setup.py develop`` / ``pip install -e . --no-build-isolation``).

The version is parsed textually from ``src/repro/_version.py`` — the single
definition the package itself exports — so packaging metadata can never
drift from ``repro.__version__`` (cache keys depend on the stamped version,
making silent drift a correctness bug, not a cosmetic one).
"""

import os
import re

from setuptools import find_packages, setup

_VERSION_FILE = os.path.join(os.path.dirname(__file__), "src", "repro", "_version.py")


def read_version() -> str:
    """The package version, read without importing the package."""
    with open(_VERSION_FILE, "r", encoding="utf-8") as fh:
        match = re.search(r'^__version__\s*=\s*"([^"]+)"', fh.read(), re.MULTILINE)
    if not match:
        raise RuntimeError(f"no __version__ definition found in {_VERSION_FILE}")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-generate = repro.cli:main_generate",
            "repro-reconstruct = repro.cli:main_reconstruct",
            "repro-batch = repro.cli:main_batch",
            "repro-backends = repro.cli:main_backends",
            "repro-analyze = repro.cli:main_analyze",
            "repro-cache = repro.cli:main_cache",
            "repro-benchmark = repro.cli:main_benchmark",
            "repro-bench = repro.cli:main_bench",
            "repro-serve = repro.cli:main_serve",
            "repro-lint = repro.staticcheck.cli:main",
        ]
    },
)

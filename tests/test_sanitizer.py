"""Tests for the runtime race sanitizer (``repro.staticcheck.sanitizer``).

The sanitizer is the dynamic half of the ``thread-escape`` contract: the
static rule proves pool-reachable writes are lock-guarded in the source,
the sanitizer observes the same discipline while real threads run.  These
tests pin the tracked-lock semantics, the violation predicate (unlocked
writes from >= 2 distinct threads), dict-field tracking, and the planted
race in ``tests/fixtures/racepkg`` being caught at runtime.
"""

import sys
import threading
from pathlib import Path

import pytest

from repro.staticcheck import sanitizer
from repro.staticcheck.sanitizer import (
    TrackedDict,
    TrackedLock,
    drain,
    instrument_class,
)

FIXTURES = str(Path(__file__).resolve().parent / "fixtures")
if FIXTURES not in sys.path:
    sys.path.insert(0, FIXTURES)


@pytest.fixture(autouse=True)
def _clean_ledger():
    """Isolate each test from writes recorded by earlier ones."""
    drain()
    yield
    drain()


def _fresh_class():
    """A new lock-owning class per test (instrumentation is permanent)."""

    class Shared:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0
            self.table = {"a": 0}

        def bump_locked(self):
            with self._lock:
                self.count += 1
                self.table["a"] += 1

        def bump_racy(self):
            self.count += 1

        def store_racy(self):
            self.table["a"] += 1

    return Shared


def _run_threads(target, n_threads=4, n_calls=200):
    workers = [
        threading.Thread(target=lambda: [target() for _ in range(n_calls)])
        for _ in range(n_threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


# --------------------------------------------------------------------------- #
class TestTrackedLock:
    def test_ownership_follows_acquire_release(self):
        lock = TrackedLock(threading.Lock())
        assert not lock.held_by_me()
        with lock:
            assert lock.held_by_me()
            assert lock.locked()
        assert not lock.held_by_me()

    def test_reentrant_depth_with_rlock(self):
        lock = TrackedLock(threading.RLock())
        with lock:
            with lock:
                assert lock.held_by_me()
            assert lock.held_by_me()  # still held after inner release
        assert not lock.held_by_me()

    def test_other_thread_not_owner(self):
        lock = TrackedLock(threading.Lock())
        lock.acquire()
        seen = {}
        worker = threading.Thread(
            target=lambda: seen.update(held=lock.held_by_me())
        )
        worker.start()
        worker.join()
        lock.release()
        assert seen["held"] is False


# --------------------------------------------------------------------------- #
class TestInstrumentation:
    def test_locked_writes_produce_no_violation(self):
        cls = instrument_class(_fresh_class(), ("count", "table"))
        shared = cls()
        _run_threads(shared.bump_locked)
        assert drain() == []
        assert shared.count == 800

    def test_unlocked_cross_thread_write_is_a_violation(self):
        cls = instrument_class(_fresh_class(), ("count", "table"))
        shared = cls()
        _run_threads(shared.bump_racy)
        violations = drain()
        assert len(violations) == 1
        (violation,) = violations
        assert violation.field_name == "count"
        assert len(violation.threads) >= 2
        assert "written without its lock" in violation.render()

    def test_dict_field_item_store_is_tracked(self):
        cls = instrument_class(_fresh_class(), ("count", "table"))
        shared = cls()
        _run_threads(shared.store_racy)
        violations = drain()
        assert [v.field_name for v in violations] == ["table"]

    def test_single_thread_unlocked_writes_are_legal(self):
        # single-owner phases (setup, teardown) are not races
        cls = instrument_class(_fresh_class(), ("count", "table"))
        shared = cls()
        for _ in range(100):
            shared.bump_racy()
        assert drain() == []

    def test_init_writes_never_recorded(self):
        cls = instrument_class(_fresh_class(), ("count", "table"))
        instances = []
        _run_threads(lambda: instances.append(cls()), n_calls=20)
        assert drain() == []

    def test_instrumentation_is_idempotent(self):
        cls = _fresh_class()
        once = instrument_class(cls, ("count",))
        twice = instrument_class(once, ("count",))
        assert twice is cls
        shared = cls()
        _run_threads(shared.bump_racy)
        assert len(drain()) == 1  # not double-counted

    def test_unguarded_fields_ignored(self):
        cls = instrument_class(_fresh_class(), ("table",))
        shared = cls()
        _run_threads(shared.bump_racy)  # races `count`, which is not tracked
        assert drain() == []

    def test_drain_clears_the_ledger(self):
        cls = instrument_class(_fresh_class(), ("count",))
        shared = cls()
        _run_threads(shared.bump_racy)
        assert len(drain()) == 1
        assert drain() == []

    def test_reassigned_dict_field_stays_tracked(self):
        cls = instrument_class(_fresh_class(), ("count", "table"))
        shared = cls()
        with shared._lock:
            shared.table = {"b": 0}
        assert isinstance(shared.table, TrackedDict)

    def test_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert sanitizer.enabled() is False
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.enabled() is True


# --------------------------------------------------------------------------- #
class TestPlantedRace:
    """The racepkg fixture: flagged statically, caught dynamically."""

    def test_hammer_trips_the_sanitizer(self):
        from racepkg.board import TallyBoard
        from racepkg.runner import hammer

        instrument_class(TallyBoard, ("hits", "misses"))
        board = TallyBoard()
        hammer(board, n_threads=4, n_bumps=500)
        violations = drain()
        assert [v.field_name for v in violations] == ["misses"]
        assert violations[0].class_name == "TallyBoard"

    def test_locked_path_on_the_same_board_is_clean(self):
        from racepkg.board import TallyBoard

        instrument_class(TallyBoard, ("hits", "misses"))
        board = TallyBoard()
        _run_threads(board.record_hit)
        assert drain() == []
        assert board.hits == 800


# --------------------------------------------------------------------------- #
class TestInstall:
    def test_install_instruments_the_shared_classes(self):
        names = sanitizer.install()
        assert "repro.core.cache.ResultCache" in names
        assert "repro.serve.metrics.ServeMetrics" in names
        assert "repro.core.workerpool.ThreadPool" in names

        from repro.serve.metrics import ServeMetrics

        metrics = ServeMetrics()
        assert isinstance(metrics._lock, TrackedLock)
        assert isinstance(metrics.counts, TrackedDict)
        # the locked inc path records nothing
        _run_threads(lambda: metrics.inc("submitted"))
        assert drain() == []
        assert metrics.counts["submitted"] == 800

    def test_install_is_idempotent(self):
        first = sanitizer.install()
        second = sanitizer.install()
        assert first == second

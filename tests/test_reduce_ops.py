"""Golden-value tests for the cross-run science ops.

Every reduce op is pinned against analytically known inputs:

* ``integrated_estimate`` over known totals;
* ``scaling_fit`` recovering a planted power-law slope and intercept
  exactly from noiseless pairs — plus the acceptance-scale version: a
  planted slope recovered through the full API (``run_many`` over 100+
  reconstructed synthetic runs) *and* through ``repro-analyze --graph``;
* ``sample_stats`` quartiles/fences with a planted outlier;
* the Zernike moments of symmetric phantoms, whose non-axisymmetric
  moments vanish by symmetry and whose radial moments have closed forms
  (a centered point source has ``c20 = -3`` and ``c40 = 5`` because
  ``R_2^0(0) = -1`` and ``R_4^0(0) = 1``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import json

import numpy as np
import pytest

import repro
from repro.analysisgraph.science_ops import (
    integrated_estimate,
    sample_stats,
    scaling_fit,
)
from repro.analysisgraph.zernike import radial_polynomial, zernike_moments
from repro.cli import main_analyze
from repro.core.ops import op_info, register_op, unregister_op
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_point_source_stack
from repro.utils.validation import ValidationError


class TestIntegratedEstimate:
    def test_known_totals(self):
        outcome = integrated_estimate([1.0, 2.0, 3.0, 4.0])
        assert outcome["n"] == 4 and outcome["n_dropped"] == 0
        assert outcome["total"] == 10.0
        assert outcome["mean"] == 2.5 and outcome["median"] == 2.5
        assert outcome["min"] == 1.0 and outcome["max"] == 4.0
        assert outcome["std"] == pytest.approx(np.sqrt(1.25))

    def test_key_extraction_and_nonfinite_drop(self):
        values = [{"total": 5.0}, {"total": float("nan")}, {"total": 7.0}]
        outcome = integrated_estimate(values, key="total")
        assert outcome["n"] == 2 and outcome["n_dropped"] == 1
        assert outcome["total"] == 12.0

    def test_dict_without_key_fails_fast(self):
        with pytest.raises(ValidationError, match="pass the key"):
            integrated_estimate([{"total": 5.0}])

    def test_non_numeric_names_the_index(self):
        with pytest.raises(ValidationError, match=r"values\[1\]"):
            integrated_estimate([1.0, "oops"])

    def test_registered_as_reduce(self):
        assert op_info("integrated_estimate").kind == "reduce"


class TestScalingFit:
    def test_planted_power_law_recovered_exactly(self):
        xs = list(np.logspace(0.0, 2.0, 25))
        slope, amplitude = 1.75, 3.0
        ys = [amplitude * x ** slope for x in xs]
        fit = scaling_fit(xs, ys)
        assert fit["slope"] == pytest.approx(slope, abs=1e-9)
        assert fit["intercept"] == pytest.approx(np.log10(amplitude), abs=1e-9)
        assert fit["scatter_dex"] == pytest.approx(0.0, abs=1e-9)
        assert fit["r_squared"] == pytest.approx(1.0)
        assert fit["n_used"] == 25 and fit["n_dropped"] == 0

    def test_nonpositive_pairs_dropped_and_counted(self):
        xs = [1.0, 10.0, -5.0, 100.0]
        ys = [2.0, 20.0, 30.0, 200.0]
        fit = scaling_fit(xs, ys)
        assert fit["n_used"] == 3 and fit["n_dropped"] == 1
        assert fit["slope"] == pytest.approx(1.0, abs=1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError, match="paired"):
            scaling_fit([1.0, 2.0], [1.0])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValidationError, match="at least 2"):
            scaling_fit([1.0, -1.0], [1.0, 1.0])

    def test_key_extraction(self):
        xs = [{"v": 1.0}, {"v": 10.0}]
        ys = [5.0, 500.0]
        fit = scaling_fit(xs, ys, x_key="v")
        assert fit["slope"] == pytest.approx(2.0, abs=1e-9)


class TestSampleStats:
    def test_known_quartiles_and_outlier(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]
        stats = sample_stats(values)
        assert stats["n"] == 6
        assert stats["q1"] == pytest.approx(2.25)
        assert stats["median"] == pytest.approx(3.5)
        assert stats["q3"] == pytest.approx(4.75)
        assert stats["iqr"] == pytest.approx(2.5)
        assert stats["outliers"] == [5]
        assert stats["n_outliers"] == 1

    def test_no_outliers_in_tight_sample(self):
        stats = sample_stats([10.0, 11.0, 12.0, 13.0])
        assert stats["outliers"] == []

    def test_negative_fence_factor_rejected(self):
        with pytest.raises(ValidationError, match="outlier_iqr"):
            sample_stats([1.0, 2.0], outlier_iqr=-1.0)


class TestZernike:
    def test_radial_polynomial_closed_forms(self):
        rho = np.linspace(0.0, 1.0, 11)
        assert radial_polynomial(0, 0, rho) == pytest.approx(np.ones_like(rho))
        assert radial_polynomial(1, 1, rho) == pytest.approx(rho)
        assert radial_polynomial(2, 0, rho) == pytest.approx(2 * rho ** 2 - 1)
        assert radial_polynomial(4, 0, rho) == pytest.approx(
            6 * rho ** 4 - 6 * rho ** 2 + 1
        )

    def test_invalid_parity_rejected(self):
        with pytest.raises(ValidationError):
            radial_polynomial(2, 1, np.array([0.5]))

    def test_c00_is_one_for_any_positive_image(self):
        rng = np.random.default_rng(7)
        image = rng.uniform(0.5, 2.0, size=(9, 9))
        moments = {(m["n"], m["m"]): m for m in zernike_moments(image, n_max=2)}
        assert moments[(0, 0)]["re"] == pytest.approx(1.0)
        assert moments[(0, 0)]["im"] == pytest.approx(0.0)

    def test_center_point_source_goldens(self):
        image = np.zeros((11, 11))
        image[5, 5] = 42.0  # all weight at rho = 0
        moments = {(m["n"], m["m"]): m for m in zernike_moments(image, n_max=4)}
        # c_{n,0} = (n+1) * R_n^0(0): R_2^0(0) = -1, R_4^0(0) = +1
        assert moments[(2, 0)]["re"] == pytest.approx(-3.0)
        assert moments[(4, 0)]["re"] == pytest.approx(5.0)
        assert moments[(2, 2)]["abs"] == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_phantom_odd_moments_vanish(self):
        # centered Gaussian on an odd grid: fully symmetric under the
        # dihedral group, so every m in {1, 2, 3} moment cancels exactly
        rows, cols = np.mgrid[0:13, 0:13]
        r2 = (rows - 6.0) ** 2 + (cols - 6.0) ** 2
        image = np.exp(-r2 / 8.0)
        moments = zernike_moments(image, n_max=4)
        for moment in moments:
            if moment["m"] in (1, 2, 3):
                assert moment["abs"] == pytest.approx(0.0, abs=1e-12), moment

    def test_asymmetric_image_flags_m2(self):
        image = np.zeros((11, 11))
        image[5, 5] = 1.0
        image[5, 8] = 5.0  # an off-center lump breaks azimuthal symmetry
        moments = {(m["n"], m["m"]): m for m in zernike_moments(image, n_max=2)}
        assert moments[(2, 2)]["abs"] > 0.1

    def test_input_validation(self):
        with pytest.raises(ValidationError):
            zernike_moments(np.zeros((4, 4)))  # zero total
        with pytest.raises(ValidationError):
            zernike_moments(np.full((4, 4), -1.0))  # negative values
        with pytest.raises(ValidationError):
            zernike_moments(np.ones(16))  # not 2-D


# --------------------------------------------------------------------------- #
class TestPlantedSlopeAcceptance:
    """The acceptance gate: a planted scaling slope recovered over 100+ runs.

    Each synthetic run scales the two detector halves independently — the
    reconstruction is per-pixel linear, so the halves stay independent
    through the full pipeline: ``left_total`` carries the planted x and
    ``right_total`` carries ``A * x ** S``.
    """

    SLOPE = 1.6
    AMPLITUDE = 0.7
    N_RUNS = 104

    @pytest.fixture()
    def half_total_ops(self):
        @register_op("left_total", description="test: left-half integrated total")
        def left_total(result):
            image = np.asarray(result.data, dtype=np.float64).sum(axis=0)
            return float(image[:, : image.shape[1] // 2].sum())

        @register_op("right_total", description="test: right-half integrated total")
        def right_total(result):
            image = np.asarray(result.data, dtype=np.float64).sum(axis=0)
            return float(image[:, image.shape[1] // 2:].sum())

        yield
        unregister_op("left_total")
        unregister_op("right_total")

    @pytest.fixture(scope="class")
    def planted_runs(self, tmp_path_factory):
        """100+ wire-scan files with the power law planted across halves."""
        root = tmp_path_factory.mktemp("planted")
        base, _source = make_point_source_stack(
            depth=40.0, n_rows=6, n_cols=6, n_positions=41
        )
        split = base.images.shape[2] // 2
        xs = np.logspace(0.0, 1.5, self.N_RUNS)
        paths = []
        for index, x in enumerate(xs):
            images = base.images.copy()
            images[:, :, :split] *= x
            images[:, :, split:] *= self.AMPLITUDE * x ** self.SLOPE
            scaled = dataclasses.replace(base, images=images)
            path = root / f"run_{index:03d}.h5lite"
            save_wire_scan(str(path), scaled)
            paths.append(str(path))
        return paths

    def fit_graph(self):
        return repro.graph(
            {"name": "x", "op": "left_total"},
            {"name": "y", "op": "right_total"},
            {"name": "fit", "op": "scaling_fit", "inputs": ["x", "y"]},
        )

    def test_api_recovers_planted_slope(self, planted_runs, half_total_ops):
        grid = repro.DepthGrid.from_range(0.0, 100.0, 20)
        batch = repro.session(grid=grid).run_many(
            planted_runs, analyze=self.fit_graph()
        )
        assert batch.n_ok == self.N_RUNS
        fit = batch.analysis["fit"]
        assert fit["n_used"] == self.N_RUNS
        assert fit["slope"] == pytest.approx(self.SLOPE, abs=1e-6)
        assert fit["r_squared"] == pytest.approx(1.0, abs=1e-9)

    def test_cli_recovers_planted_slope(self, planted_runs, half_total_ops,
                                        tmp_path):
        grid = repro.DepthGrid.from_range(0.0, 100.0, 20)
        out_dir = tmp_path / "depth"
        out_dir.mkdir()
        batch = repro.session(grid=grid).run_many(planted_runs)
        for index, item in enumerate(batch.succeeded):
            item.run.save(str(out_dir / f"depth_{index:03d}.h5lite"))
        specs = [json.dumps(spec) for spec in self.fit_graph().to_spec()]
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main_analyze([str(out_dir), "--graph"] + specs)
        assert code == 0
        document = json.loads(buffer.getvalue())
        fit = [r for r in document["reduces"] if r["node"] == "fit"][0]
        assert fit["error"] is None
        assert fit["value"]["slope"] == pytest.approx(self.SLOPE, abs=1e-6)

"""Property-based tests (hypothesis) for the core invariants.

These complement the example-based unit tests by exploring the input space of
the geometric primitives, the trapezoid integrals, the index mappings and the
accumulation buffers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.depth_grid import DepthGrid
from repro.core.depth_mapping import critical_wire_z_for_depth, pixel_yz_to_depth_scalar
from repro.core.trapezoid import (
    distribute_intensity,
    trapezoid_bin_overlaps,
    trapezoid_from_depths,
    trapezoid_height,
)
from repro.cudasim.atomic import atomic_add
from repro.cudasim.kernel import LaunchConfig
from repro.geometry.rotations import is_rotation_matrix, matrix_to_quaternion, quaternion_to_matrix
from repro.geometry.wire import Wire
from repro.io.h5lite import H5LiteFile
from repro.utils.arrays import chunk_ranges, ravel_index_3d, unravel_index_3d

# keep hypothesis fast and deterministic enough for CI-style runs
COMMON_SETTINGS = {"max_examples": 60, "deadline": None}


# --------------------------------------------------------------------------- #
# index mapping
@settings(**COMMON_SETTINGS)
@given(
    nx=st.integers(1, 50),
    ny=st.integers(1, 50),
    nz=st.integers(1, 20),
    data=st.data(),
)
def test_ravel_unravel_roundtrip(nx, ny, nz, data):
    ix = data.draw(st.integers(0, nx - 1))
    iy = data.draw(st.integers(0, ny - 1))
    iz = data.draw(st.integers(0, nz - 1))
    offset = ravel_index_3d(ix, iy, iz, nx, ny)
    assert 0 <= offset < nx * ny * nz
    rx, ry, rz = unravel_index_3d(offset, nx, ny)
    assert (rx, ry, rz) == (ix, iy, iz)


@settings(**COMMON_SETTINGS)
@given(total=st.integers(0, 1000), chunk=st.integers(1, 100))
def test_chunk_ranges_tile_the_interval(total, chunk):
    covered = []
    previous_stop = 0
    for start, stop in chunk_ranges(total, chunk):
        assert start == previous_stop
        assert stop - start <= chunk
        assert stop > start
        covered.extend(range(start, stop))
        previous_stop = stop
    assert covered == list(range(total))


# --------------------------------------------------------------------------- #
# trapezoid invariants
corner_strategy = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=4,
    max_size=4,
)


@settings(**COMMON_SETTINGS)
@given(corners=corner_strategy)
def test_trapezoid_height_bounded(corners):
    trap = trapezoid_from_depths(*corners)
    xs = np.linspace(trap.d1 - 10, trap.d4 + 10, 101)
    heights = trapezoid_height(xs, trap.d1, trap.d2, trap.d3, trap.d4)
    assert np.all((heights >= 0.0) & (heights <= 1.0))
    # zero outside the support
    assert trapezoid_height(trap.d1 - 1.0, trap.d1, trap.d2, trap.d3, trap.d4) == 0.0
    assert trapezoid_height(trap.d4 + 1.0, trap.d1, trap.d2, trap.d3, trap.d4) == 0.0


@settings(**COMMON_SETTINGS)
@given(corners=corner_strategy)
def test_trapezoid_bin_overlaps_sum_to_area(corners):
    trap = trapezoid_from_depths(*corners)
    grid = DepthGrid.from_range(trap.d1 - 5.0, trap.d4 + 5.0, 64)
    overlaps = trapezoid_bin_overlaps(grid, trap.d1, trap.d2, trap.d3, trap.d4)
    assert np.all(overlaps >= -1e-12)
    assert np.isclose(overlaps.sum(), trap.area, rtol=1e-9, atol=1e-9)


@settings(**COMMON_SETTINGS)
@given(
    corners=corner_strategy,
    intensity=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
)
def test_distribute_intensity_conserves_signal(corners, intensity):
    trap = trapezoid_from_depths(*corners)
    grid = DepthGrid.from_range(trap.d1 - 1.0, trap.d4 + 1.0, 32)
    weights = distribute_intensity(grid, intensity, trap.d1, trap.d2, trap.d3, trap.d4)
    if trap.area > 1e-9:
        assert np.isclose(weights.sum(), intensity, rtol=1e-7, atol=1e-7)
    else:
        assert np.allclose(weights, 0.0)


# --------------------------------------------------------------------------- #
# depth mapping inverse property
@settings(**COMMON_SETTINGS)
@given(
    pixel_z=st.floats(min_value=-30_000.0, max_value=30_000.0),
    depth=st.floats(min_value=-50.0, max_value=200.0),
    radius=st.floats(min_value=1.0, max_value=500.0),
    edge=st.sampled_from([1, -1]),
)
def test_depth_mapping_inverse(pixel_z, depth, radius, edge):
    pixel_y = 510_000.0
    wire_y = 1_500.0
    wire_z = float(critical_wire_z_for_depth(depth, pixel_y, pixel_z, wire_y, radius, edge))
    recovered = pixel_yz_to_depth_scalar(pixel_y, pixel_z, wire_y, wire_z, radius, edge)
    assert np.isclose(recovered, depth, rtol=1e-6, atol=1e-5)


@settings(**COMMON_SETTINGS)
@given(
    pixel_z=st.floats(min_value=-30_000.0, max_value=30_000.0),
    wire_z=st.floats(min_value=-2_000.0, max_value=2_000.0),
    radius=st.floats(min_value=1.0, max_value=500.0),
)
def test_leading_edge_always_deeper(pixel_z, wire_z, radius):
    pixel_y, wire_y = 510_000.0, 1_500.0
    leading = pixel_yz_to_depth_scalar(pixel_y, pixel_z, wire_y, wire_z, radius, 1)
    trailing = pixel_yz_to_depth_scalar(pixel_y, pixel_z, wire_y, wire_z, radius, -1)
    assert leading > trailing


# --------------------------------------------------------------------------- #
# occlusion consistency: the geometric occlusion test and the tangent-depth
# critical depth must agree about which side of the boundary a source is on
@settings(**COMMON_SETTINGS)
@given(
    pixel_z=st.floats(min_value=-20_000.0, max_value=20_000.0),
    wire_z=st.floats(min_value=-500.0, max_value=500.0),
    offset=st.floats(min_value=1.0, max_value=50.0),
)
def test_occlusion_consistent_with_critical_depths(pixel_z, wire_z, offset):
    pixel_y, wire_y, radius = 510_000.0, 1_500.0, 100.0
    wire = Wire(radius=radius)
    d_lead = pixel_yz_to_depth_scalar(pixel_y, pixel_z, wire_y, wire_z, radius, 1)
    d_trail = pixel_yz_to_depth_scalar(pixel_y, pixel_z, wire_y, wire_z, radius, -1)
    # depths strictly between the two tangent depths are occluded; depths
    # outside (with a margin) are visible
    inside = 0.5 * (d_lead + d_trail)
    outside_deep = d_lead + offset
    outside_shallow = d_trail - offset
    pixel = np.array([pixel_y, pixel_z])
    center = np.array([wire_y, wire_z])
    assert bool(wire.occludes(np.array([0.0, inside]), pixel, center))
    assert not bool(wire.occludes(np.array([0.0, outside_deep]), pixel, center))
    assert not bool(wire.occludes(np.array([0.0, outside_shallow]), pixel, center))


# --------------------------------------------------------------------------- #
# rotations
@settings(**COMMON_SETTINGS)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_rotation_roundtrip(seed):
    from repro.geometry.rotations import random_rotation

    rot = random_rotation(np.random.default_rng(seed))
    assert is_rotation_matrix(rot)
    np.testing.assert_allclose(quaternion_to_matrix(matrix_to_quaternion(rot)), rot, atol=1e-9)


# --------------------------------------------------------------------------- #
# atomic accumulation
@settings(**COMMON_SETTINGS)
@given(
    size=st.integers(1, 32),
    n_updates=st.integers(0, 200),
    seed=st.integers(0, 2**31 - 1),
)
def test_atomic_add_equals_serial_accumulation(size, n_updates, seed):
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, size, size=n_updates)
    values = rng.normal(size=n_updates)
    fast = np.zeros(size)
    atomic_add(fast, indices, values)
    slow = np.zeros(size)
    for i, v in zip(indices, values):
        slow[i] += v
    np.testing.assert_allclose(fast, slow, rtol=1e-10, atol=1e-10)


# --------------------------------------------------------------------------- #
# launch config
@settings(**COMMON_SETTINGS)
@given(
    nx=st.integers(1, 64),
    ny=st.integers(1, 64),
    nz=st.integers(1, 16),
    bx=st.integers(1, 16),
    by=st.integers(1, 8),
    bz=st.integers(1, 8),
)
def test_launch_config_covers_volume(nx, ny, nz, bx, by, bz):
    cfg = LaunchConfig.for_volume((nx, ny, nz), block_dim=(bx, by, bz))
    ex, ey, ez = cfg.thread_extent()
    assert ex >= nx and ey >= ny and ez >= nz
    # the overhang is less than one block in each direction
    assert ex - nx < bx and ey - ny < by and ez - nz < bz
    assert cfg.total_threads == ex * ey * ez


# --------------------------------------------------------------------------- #
# h5lite roundtrip
@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 6), st.integers(1, 5), st.integers(1, 4)),
    chunk=st.one_of(st.none(), st.integers(1, 4)),
    seed=st.integers(0, 2**31 - 1),
)
def test_h5lite_roundtrip_property(tmp_path_factory, shape, chunk, seed):
    data = np.random.default_rng(seed).normal(size=shape)
    path = tmp_path_factory.mktemp("h5lite") / "prop.h5lite"
    with H5LiteFile(path, "w") as fh:
        fh.create_dataset("entry/data", data, chunk_rows=chunk)
    with H5LiteFile(path, "r") as fh:
        np.testing.assert_array_equal(fh["entry/data"][...], data)
        start = shape[0] // 2
        np.testing.assert_array_equal(fh["entry/data"][start:], data[start:])


# --------------------------------------------------------------------------- #
# depth grid
@settings(**COMMON_SETTINGS)
@given(
    start=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    step=st.floats(min_value=1e-3, max_value=1e2, allow_nan=False),
    n_bins=st.integers(1, 200),
    data=st.data(),
)
def test_depth_grid_index_roundtrip(start, step, n_bins, data):
    grid = DepthGrid(start=start, step=step, n_bins=n_bins)
    index = data.draw(st.integers(0, n_bins - 1))
    depth = float(grid.index_to_depth(index))
    assert int(grid.depth_to_index(depth)) == index
    assert grid.contains(depth)

"""Unit tests for the crystallography subpackage."""

import numpy as np
import pytest

from repro.crystallography.lattice import Lattice
from repro.crystallography.laue import predict_laue_spots
from repro.crystallography.materials import MATERIALS, get_material
from repro.crystallography.orientation import Orientation
from repro.crystallography.structure_factor import is_reflection_allowed, structure_factor_magnitude
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.utils.validation import ValidationError


class TestLattice:
    def test_cubic_metric(self):
        lattice = Lattice.cubic(4.0)
        np.testing.assert_allclose(lattice.direct_matrix, 4.0 * np.eye(3), atol=1e-12)
        assert np.isclose(lattice.volume, 64.0)

    def test_reciprocal_orthogonality(self):
        lattice = Lattice(a=3.0, b=4.0, c=5.0, alpha=90, beta=90, gamma=90)
        product = lattice.direct_matrix @ lattice.reciprocal_matrix.T
        np.testing.assert_allclose(product, 2 * np.pi * np.eye(3), atol=1e-9)

    def test_reciprocal_orthogonality_triclinic(self):
        lattice = Lattice(a=3.1, b=4.2, c=5.3, alpha=85.0, beta=95.0, gamma=102.0)
        product = lattice.direct_matrix @ lattice.reciprocal_matrix.T
        np.testing.assert_allclose(product, 2 * np.pi * np.eye(3), atol=1e-9)

    def test_d_spacing_cubic_formula(self):
        a = 3.6149
        lattice = Lattice.cubic(a)
        for hkl in [(1, 1, 1), (2, 0, 0), (2, 2, 0)]:
            expected = a / np.sqrt(sum(i * i for i in hkl))
            assert np.isclose(lattice.d_spacing(hkl), expected, rtol=1e-10)

    def test_g_vector_batched(self):
        lattice = Lattice.cubic(2.0)
        g = lattice.g_vector([[1, 0, 0], [0, 2, 0]])
        assert g.shape == (2, 3)
        np.testing.assert_allclose(np.linalg.norm(g, axis=1), [np.pi, 2 * np.pi])

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            Lattice(a=-1, b=1, c=1)
        with pytest.raises(ValidationError):
            Lattice(a=1, b=1, c=1, alpha=200.0)
        with pytest.raises(ValidationError):
            Lattice(a=1, b=1, c=1, centering="X")


class TestOrientation:
    def test_identity(self):
        np.testing.assert_allclose(Orientation.identity().matrix, np.eye(3))

    def test_from_euler_identity(self):
        np.testing.assert_allclose(Orientation.from_euler(0, 0, 0).matrix, np.eye(3), atol=1e-12)

    def test_rotate_preserves_length(self):
        rng = np.random.default_rng(0)
        orientation = Orientation.random(rng)
        v = np.array([1.0, 2.0, 3.0])
        assert np.isclose(np.linalg.norm(orientation.rotate(v)), np.linalg.norm(v))

    def test_misorientation_of_perturbed(self):
        base = Orientation.identity()
        tilted = base.perturbed((0, 0, 1), 0.1)
        assert np.isclose(base.misorientation_to(tilted), 0.1, atol=1e-9)

    def test_non_rotation_rejected(self):
        with pytest.raises(ValidationError):
            Orientation(np.ones((3, 3)))

    def test_quaternion_unit_norm(self):
        q = Orientation.random(np.random.default_rng(1)).quaternion()
        assert np.isclose(np.linalg.norm(q), 1.0)


class TestStructureFactor:
    def test_primitive_allows_everything_but_000(self):
        assert is_reflection_allowed((1, 2, 3), "P")
        assert not np.any(is_reflection_allowed([[0, 0, 0]], "P"))

    def test_bcc_extinction(self):
        assert is_reflection_allowed((1, 1, 0), "I")
        assert not is_reflection_allowed((1, 0, 0), "I")

    def test_fcc_extinction(self):
        assert is_reflection_allowed((1, 1, 1), "F")
        assert is_reflection_allowed((2, 0, 0), "F")
        assert not is_reflection_allowed((1, 1, 0), "F")

    def test_diamond_extinction(self):
        assert is_reflection_allowed((1, 1, 1), "diamond")
        assert not is_reflection_allowed((2, 0, 0), "diamond")  # h+k+l = 2 = 4n+2
        assert is_reflection_allowed((4, 0, 0), "diamond")

    def test_magnitude_zero_for_forbidden(self):
        assert structure_factor_magnitude((1, 0, 0), "I") == 0.0

    def test_magnitude_decreases_with_hkl(self):
        low = structure_factor_magnitude((1, 1, 1), "F")
        high = structure_factor_magnitude((5, 5, 5), "F")
        assert low > high > 0

    def test_unknown_centering_rejected(self):
        with pytest.raises(ValidationError):
            is_reflection_allowed((1, 1, 1), "Z")


class TestMaterials:
    def test_catalogue_contains_copper(self):
        assert "Cu" in MATERIALS
        cu = get_material("Cu")
        assert cu.centering == "F"
        assert np.isclose(cu.lattice.a, 3.6149)

    def test_unknown_material(self):
        with pytest.raises(ValidationError):
            get_material("Unobtanium")


class TestLauePrediction:
    @pytest.fixture()
    def geometry(self):
        # span the ~410 mm the real 34-ID area detector covers so that the
        # Laue pattern of an arbitrary orientation reliably intersects it
        detector = Detector(n_rows=128, n_cols=128, pixel_size=3200.0, distance=510_000.0)
        beam = Beam(energy_min_kev=7.0, energy_max_kev=30.0)
        return detector, beam

    def test_spots_found_for_copper(self, geometry):
        detector, beam = geometry
        spots = predict_laue_spots(get_material("Cu"), Orientation.random(np.random.default_rng(0)), beam, detector)
        assert len(spots) > 0

    def test_spots_on_detector_and_in_band(self, geometry):
        detector, beam = geometry
        spots = predict_laue_spots(get_material("Cu"), Orientation.random(np.random.default_rng(1)), beam, detector)
        for spot in spots:
            assert 0 <= spot.row <= detector.n_rows - 1
            assert 0 <= spot.col <= detector.n_cols - 1
            assert beam.energy_min_kev <= spot.energy_kev <= beam.energy_max_kev
            assert 0 < spot.intensity <= 1.0

    def test_bragg_condition_satisfied(self, geometry):
        # |k_out| must equal |k_in| for every predicted spot
        detector, beam = geometry
        material = get_material("Cu")
        orientation = Orientation.random(np.random.default_rng(2))
        spots = predict_laue_spots(material, orientation, beam, detector)
        assert spots
        for spot in spots[:10]:
            g = orientation.rotate(material.lattice.g_vector(np.array(spot.hkl)))
            wavelength = 12.39842 / spot.energy_kev
            k = 2 * np.pi / wavelength
            k_in = k * beam.unit_direction
            k_out = k_in + g
            assert np.isclose(np.linalg.norm(k_out), k, rtol=1e-6)

    def test_spot_directions_unit_and_upward(self, geometry):
        detector, beam = geometry
        spots = predict_laue_spots(get_material("Si"), Orientation.random(np.random.default_rng(3)), beam, detector)
        for spot in spots:
            direction = np.array(spot.direction)
            assert np.isclose(np.linalg.norm(direction), 1.0)
            assert direction[1] > 0  # towards the detector

    def test_only_allowed_reflections(self, geometry):
        detector, beam = geometry
        material = get_material("Cu")
        spots = predict_laue_spots(material, Orientation.random(np.random.default_rng(4)), beam, detector)
        for spot in spots:
            assert is_reflection_allowed(spot.hkl, material.centering)

    def test_narrow_band_gives_fewer_spots(self, geometry):
        detector, _ = geometry
        orientation = Orientation.random(np.random.default_rng(5))
        wide = predict_laue_spots(get_material("Cu"), orientation, Beam(energy_min_kev=7, energy_max_kev=30), detector)
        narrow = predict_laue_spots(get_material("Cu"), orientation, Beam(energy_min_kev=10, energy_max_kev=12), detector)
        assert len(narrow) <= len(wide)

    def test_pixel_property(self, geometry):
        detector, beam = geometry
        spots = predict_laue_spots(get_material("W"), Orientation.random(np.random.default_rng(6)), beam, detector)
        if spots:
            row, col = spots[0].pixel
            assert isinstance(row, int) and isinstance(col, int)

    def test_tilted_detector_rejected(self):
        from repro.geometry.rotations import rotation_about_axis

        detector = Detector(n_rows=8, n_cols=8, tilt=rotation_about_axis((1, 0, 0), 0.1))
        with pytest.raises(ValidationError):
            predict_laue_spots(get_material("Cu"), Orientation.identity(), Beam(), detector)

    def test_invalid_max_hkl(self):
        detector = Detector(n_rows=8, n_cols=8)
        with pytest.raises(ValidationError):
            predict_laue_spots(get_material("Cu"), Orientation.identity(), Beam(), detector, max_hkl=0)

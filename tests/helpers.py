"""Shared non-fixture helpers for the test-suite."""

from __future__ import annotations

import numpy as np

from repro.core.stack import WireScanStack
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.synthetic.forward_model import design_scan_for_depth_range


def make_tiny_stack(n_rows: int = 3, n_cols: int = 2, n_positions: int = 9) -> WireScanStack:
    """Hand-rolled minimal stack used by tests that only need valid shapes."""
    detector = Detector(n_rows=n_rows, n_cols=n_cols, pixel_size=200.0, distance=510_000.0)
    scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=n_positions)
    images = np.zeros((n_positions, n_rows, n_cols))
    images += np.linspace(10.0, 0.0, n_positions)[:, None, None]
    return WireScanStack(images=images, scan=scan, detector=detector, beam=Beam())

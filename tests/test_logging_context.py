"""Request-scoped structured logging (the serve layer's attribution story).

Every log record emitted while serving a job must carry that job's id and
client id — across asyncio task switches and into executor threads — with
no changes at the emitting call sites.
"""

import asyncio
import contextvars
import io
import logging
import threading

from repro.utils.logging import (
    RequestContextFilter,
    configure,
    current_request,
    get_logger,
    request_context,
)


class _RecordCollector(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []
        self.addFilter(RequestContextFilter())

    def emit(self, record):
        self.records.append(record)


def _collecting_logger(name):
    logger = get_logger(name)
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
    collector = _RecordCollector()
    logger.addHandler(collector)
    return logger, collector


# --------------------------------------------------------------------------- #
class TestRequestContext:
    def test_binds_and_restores(self):
        assert current_request() == {"job_id": None, "client_id": None}
        with request_context(job_id="j1", client_id="alice"):
            assert current_request() == {"job_id": "j1", "client_id": "alice"}
        assert current_request() == {"job_id": None, "client_id": None}

    def test_nesting_restores_the_outer_binding(self):
        with request_context(job_id="outer"):
            with request_context(job_id="inner", client_id="c"):
                assert current_request()["job_id"] == "inner"
            assert current_request() == {"job_id": "outer", "client_id": None}

    def test_restores_on_exception(self):
        try:
            with request_context(job_id="doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_request()["job_id"] is None


class TestRequestContextFilter:
    def test_records_are_annotated_inside_a_request(self):
        logger, collector = _collecting_logger("test.ctx.annotate")
        with request_context(job_id="j42", client_id="beamline"):
            logger.info("inside")
        logger.info("outside")
        inside, outside = collector.records
        assert inside.job_id == "j42" and inside.client_id == "beamline"
        assert inside.request == " [job=j42 client=beamline]"
        assert outside.job_id is None and outside.request == ""

    def test_partial_binding_renders_what_it_has(self):
        logger, collector = _collecting_logger("test.ctx.partial")
        with request_context(job_id="only-job"):
            logger.info("x")
        assert collector.records[0].request == " [job=only-job]"

    def test_formatter_can_use_the_request_field(self):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.addFilter(RequestContextFilter())
        handler.setFormatter(logging.Formatter("%(levelname)s%(request)s: %(message)s"))
        logger = get_logger("test.ctx.format")
        logger.setLevel(logging.INFO)
        logger.propagate = False
        logger.addHandler(handler)
        with request_context(job_id="jf", client_id="cf"):
            logger.info("served")
        assert stream.getvalue() == "INFO [job=jf client=cf]: served\n"


class TestContextPropagation:
    def test_concurrent_asyncio_tasks_keep_their_own_binding(self):
        logger, collector = _collecting_logger("test.ctx.tasks")

        async def serve_one(job_id):
            with request_context(job_id=job_id):
                await asyncio.sleep(0.01)  # force interleaving
                logger.info("working")
                await asyncio.sleep(0.01)
                logger.info("done")

        async def main():
            await asyncio.gather(*(serve_one(f"job-{i}") for i in range(4)))

        asyncio.run(main())
        by_job = {}
        for record in collector.records:
            by_job.setdefault(record.job_id, []).append(record.getMessage())
        assert set(by_job) == {f"job-{i}" for i in range(4)}
        assert all(messages == ["working", "done"] for messages in by_job.values())

    def test_copy_context_carries_binding_into_a_thread(self):
        """The daemon's run_in_executor idiom: the worker thread inherits ids."""
        logger, collector = _collecting_logger("test.ctx.thread")

        def compute():
            logger.info("computing")
            return current_request()

        with request_context(job_id="jt", client_id="ct"):
            context = contextvars.copy_context()
        seen = {}
        thread = threading.Thread(target=lambda: seen.update(context.run(compute)))
        thread.start()
        thread.join()
        assert seen == {"job_id": "jt", "client_id": "ct"}
        assert collector.records[0].job_id == "jt"

    def test_plain_thread_does_not_inherit(self):
        """Without copy_context the binding stays with the creating thread."""
        seen = {}
        with request_context(job_id="leaky?"):
            thread = threading.Thread(target=lambda: seen.update(current_request()))
            thread.start()
            thread.join()
        assert seen == {"job_id": None, "client_id": None}


class TestConfigure:
    def test_idempotent_and_filtered(self):
        logger = logging.getLogger("repro")
        existing = list(logger.handlers)
        try:
            logger.handlers = []
            configured = configure(level=logging.WARNING, stream=io.StringIO())
            again = configure(level=logging.WARNING, stream=io.StringIO())
            assert configured is again
            assert len(configured.handlers) == 1
            handler = configured.handlers[0]
            assert any(isinstance(f, RequestContextFilter) for f in handler.filters)
        finally:
            logger.handlers = existing

"""The DAG analysis engine: validation, scheduling, memoization, surfaces.

Covers the :mod:`repro.analysisgraph` subsystem end to end:

* build-time validation — cycles, arity, unknown ops/inputs with
  did-you-mean suggestions, reserved names, kind rules;
* topology — deterministic topo order, wave structure, ``after`` edges
  ordering without entering node signatures;
* the linear-compatibility contract — ``repro.analysis`` pipelines now
  execute through the DAG engine and must stay byte-identical (satellite:
  old memo entries keep hitting because ``signature()`` is unchanged);
* execution — ready-set thread scheduling actually overlaps independent
  nodes, errors carry the failing node's name, per-item batch isolation;
* memoization — warm graphs are all memo hits, a one-node param change
  recomputes only the dirty subgraph, ``verify()`` keeps node memos;
* surfaces — ``RunResult.analyze``/``BatchRunResult.analyze``,
  ``Session.run_many(analyze=...)``, the ``repro-analyze`` CLI and the
  serve admission path.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import time

import pytest

import repro
from repro.analysisgraph import (
    AnalysisGraph,
    GraphAnalysisResult,
    GraphBatchResult,
    GraphExecutionError,
    as_graph,
    compile_linear,
    graph,
)
from repro.cli import main_analyze
from repro.core.cache import ResultCache
from repro.core.ops import analysis, op_info, register_op, unregister_op
from repro.io.image_stack import save_wire_scan
from repro.utils.validation import ValidationError


@pytest.fixture()
def run_result(point_source_stack, depth_grid):
    stack, _source = point_source_stack
    return repro.session(grid=depth_grid).run(repro.open(stack))


@pytest.fixture()
def chain_ops():
    """Chainable test ops: one stack consumer, one value consumer."""

    @register_op("grand_total", description="test: total of the depth cube")
    def grand_total(result):
        return float(result.data.sum())

    @register_op("scale_by", description="test: multiply an upstream value")
    def scale_by(value, factor: float = 2.0):
        return float(value) * float(factor)

    yield
    unregister_op("grand_total")
    unregister_op("scale_by")


@pytest.fixture()
def saved_batch(tmp_path, point_source_stack, depth_grid):
    """Four saved wire-scan files plus the session that reconstructs them."""
    stack, _source = point_source_stack
    paths = []
    for index in range(4):
        path = tmp_path / f"scan_{index}.h5lite"
        save_wire_scan(str(path), stack)
        paths.append(str(path))
    return paths, repro.session(grid=depth_grid)


# --------------------------------------------------------------------------- #
class TestGraphValidation:
    def test_unknown_op_suggests(self):
        with pytest.raises(ValidationError, match="aperture_total"):
            graph({"name": "x", "op": "aperture_totl"})

    def test_unknown_input_suggests(self):
        with pytest.raises(ValidationError, match="'tot'"):
            graph(
                {"name": "tot", "op": "aperture_total"},
                {"name": "est", "op": "integrated_estimate", "inputs": ["tots"]},
            )

    def test_cycle_rejected(self, chain_ops):
        with pytest.raises(ValidationError, match="[Cc]ycle"):
            graph(
                {"name": "a", "op": "scale_by", "inputs": ["b"]},
                {"name": "b", "op": "scale_by", "inputs": ["a"]},
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            graph(
                {"name": "x", "op": "total_intensity"},
                {"name": "x", "op": "peaks"},
            )

    def test_reserved_names_rejected(self):
        for reserved in ("stack", "batch"):
            with pytest.raises(ValidationError, match="reserved"):
                graph({"name": reserved, "op": "total_intensity"})

    def test_arity_enforced(self):
        # scaling_fit consumes two collected series
        with pytest.raises(ValidationError, match="2 data"):
            graph(
                {"name": "tot", "op": "aperture_total"},
                {"name": "fit", "op": "scaling_fit", "inputs": ["tot"]},
            )

    def test_run_op_cannot_consume_reduce_node(self):
        with pytest.raises(ValidationError):
            graph(
                {"name": "tot", "op": "aperture_total"},
                {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
                 "params": {"key": "total"}},
                {"name": "bad", "op": "total_intensity", "inputs": ["est"]},
            )

    def test_reduce_op_rejected_in_linear_pipeline(self):
        with pytest.raises(ValidationError, match="repro.graph"):
            analysis("integrated_estimate")

    def test_reduce_string_spec_needs_inputs(self):
        with pytest.raises(ValidationError):
            graph("integrated_estimate")

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            graph({"name": "x", "op": "peaks", "wires": ["stack"]})

    def test_unknown_after_ref_suggests(self):
        with pytest.raises(ValidationError, match="'first'"):
            graph(
                {"name": "first", "op": "total_intensity"},
                {"name": "second", "op": "peaks", "after": ["frist"]},
            )

    def test_string_spec_sugar(self):
        built = graph("peaks", "fwhm")
        assert [node.name for node in built.nodes] == ["peaks", "fwhm"]
        assert all(node.inputs == ("stack",) for node in built.nodes)

    def test_as_graph_passthrough_and_compile(self):
        built = graph("peaks")
        assert as_graph(built) is built
        compiled = as_graph(analysis("peaks", "fwhm"))
        assert isinstance(compiled, AnalysisGraph)


# --------------------------------------------------------------------------- #
class TestTopology:
    def diamond(self, chain_ops=None):
        return graph(
            {"name": "tot", "op": "grand_total"},
            {"name": "left", "op": "scale_by", "inputs": ["tot"], "params": {"factor": 2}},
            {"name": "right", "op": "scale_by", "inputs": ["tot"], "params": {"factor": 3}},
            {"name": "join", "op": "scale_by", "inputs": ["left"], "after": ["right"]},
        )

    def test_topo_order_and_waves(self, chain_ops):
        built = self.diamond()
        order = built.topo_order()
        assert order.index("tot") < order.index("left") < order.index("join")
        waves = built.waves()
        assert waves[0] == ["tot"] and sorted(waves[1]) == ["left", "right"]

    def test_after_orders_but_does_not_sign(self, chain_ops):
        with_after = graph(
            {"name": "a", "op": "grand_total"},
            {"name": "b", "op": "scale_by", "inputs": ["a"], "after": ["a"]},
        )
        without = graph(
            {"name": "a", "op": "grand_total"},
            {"name": "b", "op": "scale_by", "inputs": ["a"]},
        )
        # node signatures ignore ordering-only edges: memo entries survive
        assert with_after.node_signature("b") == without.node_signature("b")
        # ... but the graph-level signature reflects the full spec
        assert with_after.signature() != without.signature()

    def test_param_change_dirties_only_downstream(self, chain_ops):
        base = self.diamond()
        changed = graph(
            {"name": "tot", "op": "grand_total"},
            {"name": "left", "op": "scale_by", "inputs": ["tot"], "params": {"factor": 5}},
            {"name": "right", "op": "scale_by", "inputs": ["tot"], "params": {"factor": 3}},
            {"name": "join", "op": "scale_by", "inputs": ["left"], "after": ["right"]},
        )
        assert base.node_signature("tot") == changed.node_signature("tot")
        assert base.node_signature("right") == changed.node_signature("right")
        assert base.node_signature("left") != changed.node_signature("left")
        assert base.node_signature("join") != changed.node_signature("join")

    def test_describe_mentions_every_node(self, chain_ops):
        text = self.diamond().describe()
        for name in ("tot", "left", "right", "join"):
            assert name in text


# --------------------------------------------------------------------------- #
class TestLinearCompat:
    """Satellite: linear pipelines route through the DAG engine unchanged."""

    def test_pipeline_json_matches_direct_ops(self, run_result):
        pipe = analysis("peaks", ("fwhm", {}), "total_intensity")
        outcome = pipe.apply(run_result)
        stack = run_result.result
        for record in outcome.results:
            direct = op_info(record["op"]).func(stack)
            from repro.core.ops import _json_value

            assert record["value"] == _json_value(direct)
        document = json.loads(outcome.to_json())
        assert [r["op"] for r in document["results"]] == ["peaks", "fwhm", "total_intensity"]
        assert all(set(r) == {"op", "params", "value"} for r in document["results"])

    def test_compile_linear_chain_shape(self):
        compiled = compile_linear(analysis("peaks", "peaks", "fwhm"))
        names = [node.name for node in compiled.nodes]
        assert names == ["peaks", "peaks_1", "fwhm"]
        assert all(len(wave) == 1 for wave in compiled.waves())

    def test_execute_chain_matches_pipeline_values(self, run_result):
        pipe = analysis("peaks", "fwhm")
        values = compile_linear(pipe).execute_chain(run_result.result)
        outcome = pipe.apply(run_result)
        assert values == [record["value"] for record in outcome.results]

    def test_signature_is_unchanged_by_compilation(self):
        pipe = analysis("peaks", ("fwhm", {}))
        assert pipe.signature() == analysis("peaks", "fwhm").signature()
        assert pipe.signature() != compile_linear(pipe).signature()

    def test_old_pipeline_memo_entries_still_hit(self, tmp_path, point_source_stack, depth_grid):
        stack, _source = point_source_stack
        src = tmp_path / "scan.h5lite"
        save_wire_scan(str(src), stack)
        cache = ResultCache(str(tmp_path / "cache"))
        sess = repro.session(grid=depth_grid).cached(cache)
        pipe = analysis("peaks", "fwhm")
        run = sess.run(repro.open(str(src)))
        first = cache.analyze(run, pipe)
        hits_before = cache.n_hits
        second = cache.analyze(run, pipe)
        assert cache.n_hits == hits_before + 1
        assert first.to_json() == second.to_json()

    def test_chain_errors_propagate_unwrapped(self, run_result):
        @register_op("always_boom", description="test: raises")
        def always_boom(result):
            raise RuntimeError("boom")

        try:
            with pytest.raises(RuntimeError, match="boom"):
                analysis("always_boom").apply(run_result)
        finally:
            unregister_op("always_boom")


# --------------------------------------------------------------------------- #
class TestExecution:
    def test_run_scope_values_and_provenance(self, run_result, chain_ops):
        built = graph(
            {"name": "tot", "op": "grand_total"},
            {"name": "twice", "op": "scale_by", "inputs": ["tot"]},
        )
        outcome = built.apply(run_result)
        assert isinstance(outcome, GraphAnalysisResult)
        assert outcome["twice"] == pytest.approx(outcome["tot"] * 2.0)
        prov = outcome.provenance()
        assert prov["graph"]["signature"] == built.signature()
        assert prov["execution"]["scope"] == "run"
        assert set(prov["execution"]["nodes"]) == {"tot", "twice"}
        assert prov["run"] is not None

    def test_independent_nodes_overlap(self, run_result):
        @register_op("nap_a", description="test: sleeps")
        def nap_a(result):
            time.sleep(0.25)
            return 1.0

        @register_op("nap_b", description="test: sleeps")
        def nap_b(result):
            time.sleep(0.25)
            return 2.0

        try:
            built = graph("nap_a", "nap_b")
            start = time.perf_counter()
            outcome = built.apply(run_result, executor="threads")
            threaded = time.perf_counter() - start
            start = time.perf_counter()
            built.apply(run_result, executor="serial")
            serial = time.perf_counter() - start
        finally:
            unregister_op("nap_a")
            unregister_op("nap_b")
        assert outcome.execution["executor"] == "threads"
        assert serial >= 0.5 and threaded < serial
        assert threaded < 0.45  # the two 0.25 s naps genuinely overlapped

    def test_auto_is_serial_for_chains(self, run_result, chain_ops):
        built = graph(
            {"name": "tot", "op": "grand_total"},
            {"name": "twice", "op": "scale_by", "inputs": ["tot"]},
        )
        assert built.apply(run_result).execution["executor"] == "serial"

    def test_process_executor_rejected(self, run_result):
        with pytest.raises(ValidationError, match="serial"):
            graph("peaks").apply(run_result, executor="processes")

    def test_error_names_the_node(self, run_result):
        @register_op("boom_op", description="test: raises")
        def boom_op(result):
            raise RuntimeError("kapow")

        try:
            with pytest.raises(GraphExecutionError, match="'loud'.*kapow") as info:
                graph({"name": "loud", "op": "boom_op"}).apply(run_result)
        finally:
            unregister_op("boom_op")
        assert info.value.node == "loud" and info.value.op == "boom_op"

    def test_reduce_graph_needs_a_batch(self, run_result):
        built = graph(
            {"name": "tot", "op": "aperture_total"},
            {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
             "params": {"key": "total"}},
        )
        with pytest.raises(ValidationError, match="BatchRunResult"):
            built.apply(run_result)

    def test_batch_scope_isolates_item_failures(self, saved_batch, tmp_path):
        paths, sess = saved_batch
        broken = tmp_path / "broken.h5lite"
        broken.write_text("not a wire scan")
        batch = sess.run_many(paths + [str(broken)])
        built = graph(
            {"name": "tot", "op": "aperture_total"},
            {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
             "params": {"key": "total"}},
        )
        outcome = built.apply(batch)
        assert isinstance(outcome, GraphBatchResult)
        assert outcome.n_ok == len(paths) and outcome.n_failed == 1
        assert outcome.failed[0].input_path == str(broken)
        # the reduce still ran over the surviving items, in input order
        assert outcome["est"]["n"] == len(paths)

    def test_reduce_error_captured_and_dependents_skipped(self, saved_batch):
        paths, sess = saved_batch
        batch = sess.run_many(paths)
        built = graph(
            {"name": "morph", "op": "zernike_moments"},
            # dict-valued upstream without a key: the reduce must fail fast
            {"name": "est", "op": "integrated_estimate", "inputs": ["morph"]},
            {"name": "downstream", "op": "sample_stats", "inputs": ["est"]},
        )
        outcome = built.apply(batch)
        records = {record["node"]: record for record in outcome.reduces}
        assert "pass the key" in records["est"]["error"]
        assert "skipped" in records["downstream"]["error"]
        with pytest.raises(KeyError):
            outcome["est"]


# --------------------------------------------------------------------------- #
class TestMemoization:
    @pytest.fixture()
    def cached_setup(self, tmp_path, point_source_stack, depth_grid):
        stack, _source = point_source_stack
        src = tmp_path / "scan.h5lite"
        save_wire_scan(str(src), stack)
        cache = ResultCache(str(tmp_path / "cache"))
        sess = repro.session(grid=depth_grid).cached(cache)
        return sess, str(src), cache

    def chained(self, factor: float):
        return graph(
            {"name": "tot", "op": "grand_total"},
            {"name": "scaled", "op": "scale_by", "inputs": ["tot"],
             "params": {"factor": factor}},
        )

    def test_warm_graph_is_all_hits(self, cached_setup, chain_ops):
        sess, src, _cache = cached_setup
        run = sess.run(repro.open(src))
        built = self.chained(2.0)
        cold = run.analyze(built)
        assert cold.execution["memoized"] and cold.execution["n_memo_hits"] == 0
        warm = sess.run(repro.open(src)).analyze(built)
        assert warm.execution["n_memo_hits"] == 2
        assert warm.execution["n_computed"] == 0
        assert warm.values == cold.values

    def test_param_change_recomputes_only_dirty_subgraph(self, cached_setup, chain_ops):
        sess, src, _cache = cached_setup
        run = sess.run(repro.open(src))
        run.analyze(self.chained(2.0))
        dirty = run.analyze(self.chained(5.0))
        nodes = dirty.execution["nodes"]
        assert nodes["tot"]["memo_hit"] is True
        assert nodes["scaled"]["memo_hit"] is False
        assert dirty["scaled"] == pytest.approx(dirty["tot"] * 5.0)

    def test_uncached_run_is_not_memoized(self, run_result, chain_ops):
        outcome = run_result.analyze(self.chained(2.0))
        assert outcome.execution["memoized"] is False

    def test_verify_keeps_node_memos(self, cached_setup, chain_ops):
        sess, src, cache = cached_setup
        run = sess.run(repro.open(src))
        run.analyze(self.chained(2.0))
        report = cache.verify()
        assert report["n_repaired"] == 0
        warm = run.analyze(self.chained(2.0))
        assert warm.execution["n_memo_hits"] == 2

    def test_reduce_memoizes_per_batch_content(self, tmp_path, point_source_stack, depth_grid):
        stack, _source = point_source_stack
        paths = []
        for index in range(3):
            path = tmp_path / f"scan_{index}.h5lite"
            save_wire_scan(str(path), stack)
            paths.append(str(path))
        cache = ResultCache(str(tmp_path / "cache"))
        sess = repro.session(grid=depth_grid).cached(cache)
        built = graph(
            {"name": "tot", "op": "aperture_total"},
            {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
             "params": {"key": "total"}},
        )
        cold = sess.run_many(paths, analyze=built).analysis
        assert [r["memo_hit"] for r in cold.reduces] == [False]
        warm = sess.run_many(paths, analyze=built).analysis
        assert [r["memo_hit"] for r in warm.reduces] == [True]
        assert warm["est"] == cold["est"]


# --------------------------------------------------------------------------- #
class TestSurfaces:
    def test_run_analyze_rejects_graph_with_kwargs(self, run_result):
        with pytest.raises(ValidationError):
            run_result.analyze(graph("peaks"), min_relative_height=0.5)

    def test_batch_analyze_linear_fans_out(self, saved_batch):
        paths, sess = saved_batch
        batch = sess.run_many(paths)
        outcome = batch.analyze("peaks", "fwhm")
        assert outcome.n_ok == len(paths)
        assert batch.analysis is outcome
        assert json.loads(batch.to_json())["analysis"]["n_ok"] == len(paths)

    def test_run_many_analyze_kwarg_with_graph(self, saved_batch):
        paths, sess = saved_batch
        built = graph(
            {"name": "tot", "op": "aperture_total"},
            {"name": "stats", "op": "sample_stats", "inputs": ["tot"],
             "params": {"key": "total"}},
        )
        batch = sess.run_many(paths, analyze=built)
        assert isinstance(batch.analysis, GraphBatchResult)
        assert batch.analysis["stats"]["n"] == len(paths)

    def test_cli_graph_batch_and_failure_exit(self, saved_batch, tmp_path):
        paths, sess = saved_batch
        out_dir = tmp_path / "depth"
        out_dir.mkdir()
        batch = sess.run_many(paths)
        for index, item in enumerate(batch.succeeded):
            item.run.save(str(out_dir / f"depth_{index}.h5lite"))
        spec = json.dumps({"name": "tot", "op": "aperture_total"})
        est = json.dumps({"name": "est", "op": "integrated_estimate",
                          "inputs": ["tot"], "params": {"key": "total"}})
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main_analyze([str(out_dir), "--graph", spec, est])
        assert code == 0
        document = json.loads(buffer.getvalue())
        fit = [r for r in document["reduces"] if r["node"] == "est"][0]
        assert fit["value"]["n"] == len(paths)

        (out_dir / "corrupt.h5lite").write_text("junk")
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = main_analyze([str(out_dir), "total_intensity"])
        assert code == 1
        assert "corrupt.h5lite" in err.getvalue()
        assert "1 of" in err.getvalue()

    def test_serve_submission_accepts_run_graph(self, saved_batch):
        from repro.serve.jobs import parse_submission

        paths, sess = saved_batch
        body = {
            "source": {"path": paths[0]},
            "config": sess.config.to_dict(),
            "graph": graph("peaks", "fwhm").to_spec(),
        }
        job = parse_submission(body)
        assert isinstance(job.pipeline, AnalysisGraph)
        assert [spec["op"] for spec in job.analyze_specs] == ["peaks", "fwhm"]

    def test_serve_submission_rejects_reduce_graph(self, saved_batch):
        from repro.serve.jobs import parse_submission

        paths, sess = saved_batch
        body = {
            "source": {"path": paths[0]},
            "config": sess.config.to_dict(),
            "graph": graph(
                {"name": "tot", "op": "aperture_total"},
                {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
                 "params": {"key": "total"}},
            ).to_spec(),
        }
        with pytest.raises(ValidationError, match="reduce"):
            parse_submission(body)

    def test_serve_submission_rejects_graph_plus_analyze(self, saved_batch):
        from repro.serve.jobs import parse_submission

        paths, sess = saved_batch
        body = {
            "source": {"path": paths[0]},
            "config": sess.config.to_dict(),
            "analyze": [["peaks", {}]],
            "graph": [{"name": "x", "op": "peaks"}],
        }
        with pytest.raises(ValidationError, match="not both"):
            parse_submission(body)

    def test_ops_listing_reports_kinds(self):
        kinds = {info.name: info.kind for info in repro.ops()}
        assert kinds["peaks"] == "run"
        assert kinds["scaling_fit"] == "reduce"
        assert kinds["integrated_estimate"] == "reduce"

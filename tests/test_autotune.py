"""Auto-tuner tests: decision cache, probe, resolution, session surface.

The tuner's contract: ``workers="auto"`` must always resolve to concrete
values before the engine sees them, the decision must be cached per
(machine, workload-shape) under the result-cache root, and the decision —
including an honest *serial* decision — must carry its reason.
"""

import json
import os

import numpy as np
import pytest

from repro.core.config import AUTO, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.perf.autotune import (
    MIN_PARALLEL_SPEEDUP,
    TUNE_FORMAT_VERSION,
    TuningDecision,
    decision_path,
    load_decision,
    machine_fingerprint,
    resolve_auto_config,
    run_throughput_probe,
    store_decision,
    tune,
    workload_signature,
)


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 25)


def _decision(**overrides):
    defaults = {
        "executor": "threads",
        "n_workers": 4,
        "min_elements_per_dispatch": 12345,
        "reason": "test decision",
        "machine": machine_fingerprint(),
        "workload": workload_signature(41, 8, 8, 25),
    }
    defaults.update(overrides)
    return TuningDecision(**defaults)


class TestDecisionRoundTrip:
    def test_to_from_dict(self):
        decision = _decision(probe={"serial_s": 0.1})
        clone = TuningDecision.from_dict(decision.to_dict())
        assert clone == decision

    def test_format_version_stamped(self):
        assert _decision().to_dict()["format_version"] == TUNE_FORMAT_VERSION

    def test_incompatible_version_rejected(self):
        from repro.utils.validation import ValidationError

        data = _decision().to_dict()
        data["format_version"] = TUNE_FORMAT_VERSION + 1
        with pytest.raises(ValidationError):
            TuningDecision.from_dict(data)

    def test_store_load_cycle(self, tmp_path):
        decision = _decision()
        path = store_decision(decision, root=str(tmp_path))
        assert os.path.exists(path)
        assert path.startswith(os.path.join(str(tmp_path), "autotune"))
        loaded = load_decision(decision.machine, decision.workload, root=str(tmp_path))
        assert loaded == decision

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        decision = _decision()
        path = store_decision(decision, root=str(tmp_path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert load_decision(decision.machine, decision.workload, root=str(tmp_path)) is None
        assert not os.path.exists(path)

    def test_missing_file_is_a_miss(self, tmp_path):
        assert load_decision(machine_fingerprint(), {"elements_log2": 3}, root=str(tmp_path)) is None


class TestDecisionPath:
    def test_deterministic(self, tmp_path):
        machine = machine_fingerprint()
        workload = workload_signature(41, 8, 8, 25)
        assert decision_path(machine, workload, str(tmp_path)) == decision_path(
            machine, workload, str(tmp_path)
        )

    def test_distinct_workloads_distinct_paths(self, tmp_path):
        machine = machine_fingerprint()
        a = decision_path(machine, workload_signature(41, 8, 8, 25), str(tmp_path))
        b = decision_path(machine, workload_signature(41, 512, 512, 25), str(tmp_path))
        assert a != b

    def test_similar_sizes_share_a_bucket(self):
        # same power-of-two bucket -> same cached decision
        assert workload_signature(41, 8, 8, 25) == workload_signature(41, 8, 9, 25)


class TestTune:
    def test_single_cpu_short_circuits_to_serial(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        decision = tune(41, 8, 8, 25, root=str(tmp_path))
        assert decision.executor == "serial"
        assert decision.n_workers == 1
        assert "single-CPU" in decision.reason
        assert decision.probe == {}  # no probe was run

    def test_decision_is_cached(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        first = tune(41, 8, 8, 25, root=str(tmp_path))
        path = decision_path(first.machine, first.workload, str(tmp_path))
        assert os.path.exists(path)
        # poison the stored reason: a second tune() must serve the file, not re-probe
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["reason"] = "served from cache"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        second = tune(41, 8, 8, 25, root=str(tmp_path))
        assert second.reason == "served from cache"

    def test_force_reprobes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        first = tune(41, 8, 8, 25, root=str(tmp_path))
        path = decision_path(first.machine, first.workload, str(tmp_path))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["reason"] = "stale"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        fresh = tune(41, 8, 8, 25, root=str(tmp_path), force=True)
        assert fresh.reason != "stale"

    def test_parallel_decision_requires_probe_win(self, tmp_path, monkeypatch):
        """With >1 CPUs the probe runs; whatever it decides carries its data."""
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        decision = tune(41, 8, 8, 25, root=str(tmp_path), force=True)
        assert decision.executor in ("serial", "threads")
        assert decision.probe  # the probe record is attached either way
        best = max(decision.probe["thread_speedup"].values())
        if decision.executor == "threads":
            assert best >= MIN_PARALLEL_SPEEDUP
        else:
            assert best < MIN_PARALLEL_SPEEDUP
        assert decision.min_elements_per_dispatch >= 1


class TestProbe:
    def test_probe_record_shape(self):
        probe = run_throughput_probe(candidate_workers=[2], repeats=1)
        assert probe["serial_s"] > 0
        assert set(probe["threaded_s"]) == {"2"}
        assert set(probe["thread_speedup"]) == {"2"}
        assert probe["dispatch_overhead_s"] > 0
        assert probe["min_elements_per_dispatch"] >= 1
        from repro.core.workerpool import shutdown_shared_thread_pool

        shutdown_shared_thread_pool()


class TestResolveAutoConfig:
    def test_concrete_config_passes_through(self, grid, tmp_path):
        config = ReconstructionConfig(grid=grid, executor="serial", n_workers=2)
        resolved, decision = resolve_auto_config(config, 41, 8, 8, root=str(tmp_path))
        assert resolved is config
        assert decision is None

    def test_auto_markers_replaced(self, grid, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        config = ReconstructionConfig(grid=grid, executor=AUTO, n_workers=AUTO)
        resolved, decision = resolve_auto_config(config, 41, 8, 8, root=str(tmp_path))
        assert decision is not None
        assert resolved.executor == decision.executor
        assert resolved.n_workers == decision.n_workers
        assert resolved.executor != AUTO
        assert not isinstance(resolved.n_workers, str)

    def test_partial_auto_only_replaces_marked_field(self, grid, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        config = ReconstructionConfig(grid=grid, executor="threads", n_workers=AUTO)
        resolved, decision = resolve_auto_config(config, 41, 8, 8, root=str(tmp_path))
        assert resolved.executor == "threads"  # untouched: the user pinned it
        assert resolved.n_workers == decision.n_workers


class TestSessionSurface:
    def test_workers_auto_resolves_and_records_note(self, tmp_path, monkeypatch):
        from repro.core.session import session
        from repro.synthetic.workloads import make_point_source_stack

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        stack, _ = make_point_source_stack(depth=40.0, n_rows=6, n_cols=5, n_positions=41)
        grid = DepthGrid.from_range(0.0, 100.0, 25)

        reference = session(grid=grid, backend="vectorized").run(stack)
        auto_run = session(grid=grid, backend="vectorized").configure(workers="auto").run(stack)

        assert np.array_equal(reference.result.data, auto_run.result.data)
        assert any("autotune:" in note for note in auto_run.report.notes)
        # provenance keeps the user's markers: the cache key was computed from them
        assert auto_run.config.n_workers == AUTO
        assert auto_run.config.executor == AUTO

    def test_workers_int_alias(self, grid):
        from repro.core.session import session

        sess = session(grid=grid).configure(workers=3)
        assert sess.config.n_workers == 3

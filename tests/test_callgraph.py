"""Tests for ``repro.staticcheck.callgraph`` — the whole-program call graph.

Covers module naming, node/edge construction on synthetic packages,
registry-decorated entry points, submission-site detection (including the
parameter-forwarding resolution the analysis-graph executor needs),
reachability, and the byte-determinism of the JSON artifact that CI
checks in as ``callgraph.json``.
"""

import json
import textwrap
from pathlib import Path

from repro.staticcheck.callgraph import (
    build_call_graph,
    module_name_for_path,
    write_callgraph,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
RACEPKG = REPO_ROOT / "tests" / "fixtures" / "racepkg"


def _write_pkg(tmp_path, files):
    """Create a package tree from {relative path: source} and return its root."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(tmp_path)


# --------------------------------------------------------------------------- #
class TestModuleNaming:
    def test_package_chain_walked(self):
        path = str(REPO_ROOT / "src" / "repro" / "core" / "cache.py")
        assert module_name_for_path(path) == "repro.core.cache"

    def test_init_module_named_after_package(self):
        path = str(REPO_ROOT / "src" / "repro" / "core" / "__init__.py")
        assert module_name_for_path(path) == "repro.core"

    def test_walk_stops_at_non_package_dir(self):
        path = str(RACEPKG / "board.py")
        assert module_name_for_path(path) == "racepkg.board"


# --------------------------------------------------------------------------- #
class TestGraphConstruction:
    def test_method_call_edges_via_self_and_annotation(self, tmp_path):
        root = _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Greeter:
                    def greet(self) -> str:
                        return self.name()

                    def name(self) -> str:
                        return "hi"

                def use(greeter: Greeter) -> str:
                    return greeter.greet()
            """,
        })
        graph = build_call_graph([root])
        assert "pkg.mod.Greeter.name" in graph.edges["pkg.mod.Greeter.greet"]
        assert "pkg.mod.Greeter.greet" in graph.edges["pkg.mod.use"]

    def test_registry_decorated_functions_are_entry_points(self, tmp_path):
        root = _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ops.py": """
                from repro.analysisgraph.registry import register_op

                @register_op("fixture-op")
                def fixture_op(run):
                    return run

                def helper(run):
                    return run
            """,
        })
        graph = build_call_graph([root])
        entries = graph.entry_points()
        assert "pkg.ops.fixture_op" in entries
        assert "pkg.ops.helper" not in entries

    def test_nested_function_qualname_and_edge(self, tmp_path):
        root = _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/nest.py": """
                def outer():
                    def inner():
                        return leaf()
                    return inner

                def leaf():
                    return 1
            """,
        })
        graph = build_call_graph([root])
        assert "pkg.nest.outer.<locals>.inner" in graph.functions
        assert "pkg.nest.leaf" in graph.edges["pkg.nest.outer.<locals>.inner"]

    def test_submission_site_thread_target(self):
        graph = build_call_graph([str(RACEPKG)])
        sites = [s for s in graph.submission_sites if s.api == "Thread"]
        assert any(
            s.callee == "racepkg.runner.hammer.<locals>.spin" for s in sites
        )

    def test_reachability_crosses_closure_receiver_type(self):
        graph = build_call_graph([str(RACEPKG)])
        reached = graph.reachable(["racepkg.runner.hammer.<locals>.spin"])
        assert "racepkg.board.TallyBoard.bump_miss" in reached


# --------------------------------------------------------------------------- #
class TestProjectGraph:
    """The repository's own source tree as the fixture."""

    def test_forwarded_submission_resolves_analysisgraph_compute(self):
        graph = build_call_graph([str(REPO_ROOT / "src")])
        roots = graph.submission_roots()
        assert "repro.analysisgraph.execute.execute_run_graph.<locals>.compute" in roots

    def test_every_edge_endpoint_is_known(self):
        # callers are always functions; callees may also be classes
        # (a constructor call is an edge to the class qualname)
        graph = build_call_graph([str(REPO_ROOT / "src")])
        for caller, callees in graph.edges.items():
            assert caller in graph.functions
            for callee in callees:
                assert callee in graph.functions or callee in graph.classes, (
                    f"{caller} -> {callee}"
                )


# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_two_fresh_builds_are_byte_identical(self):
        first = build_call_graph([str(REPO_ROOT / "src")]).to_json()
        second = build_call_graph([str(REPO_ROOT / "src")]).to_json()
        assert first == second
        assert "0x" not in first  # no leaked object ids

    def test_write_callgraph_artifact_roundtrips(self, tmp_path, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        out = tmp_path / "callgraph.json"
        document = write_callgraph(str(out), paths=("src",))
        on_disk = json.loads(out.read_text())
        assert on_disk == document
        assert on_disk["tool"] == "repro-callgraph"
        summary = on_disk["summary"]
        assert summary["n_functions"] == len(on_disk["functions"])
        assert summary["n_submission_sites"] == len(on_disk["submission_sites"])

    def test_json_document_is_sorted(self):
        document = build_call_graph([str(RACEPKG)]).to_dict()
        functions = list(document["functions"])
        assert functions == sorted(functions)
        modules = list(document["modules"])
        assert modules == sorted(modules)

"""Tests for the deprecated shims (DepthReconstructor, file pipeline).

The old entry points must keep working — same signatures, same return
shapes, bitwise-identical outputs — while emitting ``DeprecationWarning``
and delegating to the Session front door.  New code should use
``repro.session`` / ``repro.open`` (tested in ``test_session_source.py``).
"""

import numpy as np
import pytest

from repro.core.config import ReconstructionConfig
from repro.core.pipeline import reconstruct_file
from repro.core.reconstruction import DepthReconstructor
from repro.core.session import session
from repro.io.h5lite import H5LiteError
from repro.io.image_stack import load_depth_resolved, save_wire_scan
from repro.io.text_output import read_depth_profiles
from repro.utils.validation import ValidationError


def _reconstructor(*args, **kwargs) -> DepthReconstructor:
    """Build the deprecated reconstructor, asserting it warns."""
    with pytest.warns(DeprecationWarning, match="DepthReconstructor is deprecated"):
        return DepthReconstructor(*args, **kwargs)


class TestDepthReconstructorShim:
    def test_construct_from_grid(self, depth_grid):
        reconstructor = _reconstructor(grid=depth_grid, backend="vectorized")
        assert reconstructor.backend_name == "vectorized"
        assert reconstructor.grid is depth_grid

    def test_construct_from_config(self, depth_grid):
        config = ReconstructionConfig(grid=depth_grid, backend="gpusim")
        reconstructor = _reconstructor(config=config)
        assert reconstructor.backend_name == "gpusim"

    def test_requires_grid_or_config(self):
        with pytest.raises(ValidationError):
            DepthReconstructor()

    def test_rejects_both_config_and_overrides(self, depth_grid):
        config = ReconstructionConfig(grid=depth_grid)
        with pytest.raises(ValidationError):
            DepthReconstructor(config=config, backend="gpusim")

    def test_reconstruct_returns_report_by_default(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        reconstructor = _reconstructor(grid=depth_grid)
        result, report = reconstructor.reconstruct(stack)
        assert result.shape[0] == depth_grid.n_bins
        assert report.backend == "vectorized"

    def test_reconstruct_without_report_keeps_report_on_last_run(
        self, point_source_stack, depth_grid
    ):
        """return_report=False keeps the old return shape but no longer loses
        the report: the full RunResult stays on .last_run."""
        stack, _ = point_source_stack
        reconstructor = _reconstructor(grid=depth_grid)
        result = reconstructor.reconstruct(stack, return_report=False)
        assert result.shape[0] == depth_grid.n_bins
        assert reconstructor.last_run is not None
        assert reconstructor.last_run.result is result
        assert reconstructor.last_run.report.backend == "vectorized"
        assert reconstructor.last_run.report.n_chunks >= 1

    def test_with_backend(self, depth_grid):
        reconstructor = _reconstructor(grid=depth_grid).with_backend("gpusim", layout="pointer3d")
        assert reconstructor.backend_name == "gpusim"
        assert reconstructor.config.layout == "pointer3d"

    def test_exposes_equivalent_session(self, depth_grid):
        reconstructor = _reconstructor(grid=depth_grid, backend="gpusim")
        assert reconstructor.session.config == reconstructor.config

    def test_config_remains_assignable(self, depth_grid):
        """The historical class exposed config as a writable attribute."""
        reconstructor = _reconstructor(grid=depth_grid)
        reconstructor.config = reconstructor.config.with_overrides(rows_per_chunk=4)
        assert reconstructor.config.rows_per_chunk == 4
        assert reconstructor.session.config.rows_per_chunk == 4

    def test_compare_backends(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        reconstructor = _reconstructor(grid=depth_grid)
        results = reconstructor.compare_backends(stack, ["vectorized", "gpusim"])
        assert set(results) == {"vectorized", "gpusim"}
        np.testing.assert_allclose(
            results["vectorized"][0].data, results["gpusim"][0].data, rtol=1e-9, atol=1e-12
        )

    def test_point_source_recovered_near_true_depth(self, point_source_stack, depth_grid):
        stack, _source = point_source_stack
        result, _ = _reconstructor(grid=depth_grid).reconstruct(stack)
        integrated = result.integrated_profile()
        peak_depth = depth_grid.index_to_depth(int(np.argmax(integrated)))
        assert abs(peak_depth - 40.0) <= 2.5 * depth_grid.step


class TestPipelineShims:
    def test_file_to_file_roundtrip(self, point_source_stack, depth_grid, tmp_path):
        stack, _ = point_source_stack
        input_path = tmp_path / "scan.h5lite"
        output_path = tmp_path / "depth.h5lite"
        text_path = tmp_path / "profiles.txt"
        save_wire_scan(input_path, stack)

        config = ReconstructionConfig(grid=depth_grid, backend="vectorized")
        with pytest.warns(DeprecationWarning, match="reconstruct_file"):
            outcome = reconstruct_file(
                str(input_path), config, output_path=str(output_path), text_path=str(text_path)
            )
        assert outcome.result.total_intensity() > 0
        assert output_path.exists()
        assert text_path.exists()
        assert outcome.input_path == str(input_path)
        assert outcome.output_path == str(output_path)

        # the saved depth-resolved stack must round-trip
        loaded = load_depth_resolved(output_path)
        np.testing.assert_allclose(loaded.data, outcome.result.data)
        assert loaded.grid == outcome.result.grid

        # the text profile of the brightest pixel must match the result
        depths, profiles = read_depth_profiles(text_path)
        (pixel, profile), = profiles.items()
        np.testing.assert_allclose(profile, outcome.result.depth_profile(*pixel), rtol=1e-6)
        np.testing.assert_allclose(depths, depth_grid.centers)

    def test_pipeline_matches_in_memory_reconstruction(self, point_source_stack, depth_grid, tmp_path):
        stack, _ = point_source_stack
        input_path = tmp_path / "scan.h5lite"
        save_wire_scan(input_path, stack)
        config = ReconstructionConfig(grid=depth_grid, backend="vectorized")
        with pytest.warns(DeprecationWarning, match="reconstruct_file"):
            outcome = reconstruct_file(str(input_path), config)
        direct = session(config=config).run(stack).result
        np.testing.assert_allclose(outcome.result.data, direct.data, rtol=1e-9, atol=1e-12)

    def test_pipeline_with_explicit_text_pixels(self, point_source_stack, depth_grid, tmp_path):
        stack, _ = point_source_stack
        input_path = tmp_path / "scan.h5lite"
        text_path = tmp_path / "profiles.txt"
        save_wire_scan(input_path, stack)
        config = ReconstructionConfig(grid=depth_grid)
        with pytest.warns(DeprecationWarning, match="reconstruct_file"):
            reconstruct_file(
                str(input_path), config, text_path=str(text_path), text_pixels=[(0, 0), (1, 1)]
            )
        _, profiles = read_depth_profiles(text_path)
        assert set(profiles) == {(0, 0), (1, 1)}

    def test_missing_input_raises(self, depth_grid, tmp_path):
        config = ReconstructionConfig(grid=depth_grid)
        with pytest.warns(DeprecationWarning, match="reconstruct_file"):
            with pytest.raises(H5LiteError):
                reconstruct_file(str(tmp_path / "nope.h5lite"), config)

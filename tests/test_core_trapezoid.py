"""Unit tests for the trapezoidal depth-response function."""

import numpy as np
import pytest

from repro.core.depth_grid import DepthGrid
from repro.core.trapezoid import (
    Trapezoid,
    distribute_intensity,
    trapezoid_area,
    trapezoid_bin_overlaps,
    trapezoid_from_depths,
    trapezoid_height,
    trapezoid_overlap,
)
from repro.utils.validation import ValidationError


class TestTrapezoidConstruction:
    def test_sorted_corners(self):
        trap = trapezoid_from_depths(3.0, 1.0, 4.0, 2.0)
        assert (trap.d1, trap.d2, trap.d3, trap.d4) == (1.0, 2.0, 3.0, 4.0)

    def test_area_formula(self):
        trap = Trapezoid(0.0, 1.0, 3.0, 4.0)
        assert np.isclose(trap.area, 3.0)

    def test_triangle_degenerate(self):
        trap = Trapezoid(0.0, 1.0, 1.0, 2.0)
        assert np.isclose(trap.area, 1.0)

    def test_box_degenerate(self):
        trap = Trapezoid(0.0, 0.0, 2.0, 2.0)
        assert np.isclose(trap.area, 2.0)

    def test_zero_width(self):
        trap = Trapezoid(1.0, 1.0, 1.0, 1.0)
        assert trap.area == 0.0

    def test_unordered_corners_rejected(self):
        with pytest.raises(ValidationError):
            Trapezoid(2.0, 1.0, 3.0, 4.0)

    def test_nan_corner_rejected(self):
        with pytest.raises(ValidationError):
            trapezoid_from_depths(float("nan"), 1.0, 2.0, 3.0)

    def test_support(self):
        assert Trapezoid(0.0, 1.0, 2.0, 5.0).support == (0.0, 5.0)


class TestTrapezoidHeight:
    def test_zero_outside_support(self):
        assert trapezoid_height(-1.0, 0.0, 1.0, 2.0, 3.0) == 0.0
        assert trapezoid_height(4.0, 0.0, 1.0, 2.0, 3.0) == 0.0

    def test_one_on_plateau(self):
        assert trapezoid_height(1.5, 0.0, 1.0, 2.0, 3.0) == 1.0

    def test_linear_on_ramps(self):
        assert np.isclose(trapezoid_height(0.5, 0.0, 1.0, 2.0, 3.0), 0.5)
        assert np.isclose(trapezoid_height(2.75, 0.0, 1.0, 2.0, 3.0), 0.25)

    def test_vectorised_evaluation(self):
        x = np.linspace(-1, 4, 101)
        h = trapezoid_height(x, 0.0, 1.0, 2.0, 3.0)
        assert h.shape == x.shape
        assert np.all((h >= 0) & (h <= 1))

    def test_box_has_unit_height_inside(self):
        assert trapezoid_height(1.0, 0.0, 0.0, 2.0, 2.0) == 1.0

    def test_object_height_matches_function(self):
        trap = Trapezoid(0.0, 1.0, 2.0, 3.0)
        assert np.isclose(trap.height(0.5), trapezoid_height(0.5, 0.0, 1.0, 2.0, 3.0))


class TestOverlaps:
    def test_overlap_of_full_support_equals_area(self):
        corners = (0.0, 1.0, 3.0, 4.0)
        assert np.isclose(float(trapezoid_overlap(-10.0, 10.0, *corners)), trapezoid_area(*corners))

    def test_overlap_additivity(self):
        corners = (0.0, 1.0, 3.0, 4.0)
        left = float(trapezoid_overlap(-1.0, 2.0, *corners))
        right = float(trapezoid_overlap(2.0, 5.0, *corners))
        total = float(trapezoid_overlap(-1.0, 5.0, *corners))
        assert np.isclose(left + right, total)

    def test_overlap_matches_numerical_integration(self):
        corners = (0.3, 1.7, 2.2, 5.9)
        lo, hi = 1.0, 3.0
        x = np.linspace(lo, hi, 20001)
        numerical = np.trapezoid(trapezoid_height(x, *corners), x)
        assert np.isclose(float(trapezoid_overlap(lo, hi, *corners)), numerical, rtol=1e-6)

    def test_bin_overlaps_sum_to_area_when_grid_covers_support(self):
        grid = DepthGrid.from_range(-10.0, 10.0, 80)
        corners = (0.0, 0.5, 1.5, 2.0)
        overlaps = trapezoid_bin_overlaps(grid, *corners)
        assert overlaps.shape == (1, 80)
        assert np.isclose(overlaps.sum(), trapezoid_area(*corners))

    def test_bin_overlaps_vectorised_over_trapezoids(self):
        grid = DepthGrid.from_range(0.0, 10.0, 20)
        d1 = np.array([0.0, 2.0])
        d2 = np.array([1.0, 3.0])
        d3 = np.array([2.0, 4.0])
        d4 = np.array([3.0, 5.0])
        overlaps = trapezoid_bin_overlaps(grid, d1, d2, d3, d4)
        assert overlaps.shape == (2, 20)
        np.testing.assert_allclose(overlaps.sum(axis=1), trapezoid_area(d1, d2, d3, d4))

    def test_overlaps_are_non_negative(self):
        grid = DepthGrid.from_range(0.0, 10.0, 10)
        overlaps = trapezoid_bin_overlaps(grid, -5.0, -1.0, 2.0, 30.0)
        assert np.all(overlaps >= 0)


class TestDistributeIntensity:
    def test_intensity_conserved_inside_grid(self):
        grid = DepthGrid.from_range(0.0, 10.0, 40)
        weights = distribute_intensity(grid, 7.0, 2.0, 3.0, 4.0, 5.0)
        assert np.isclose(weights.sum(), 7.0)

    def test_partial_overlap_drops_outside_fraction(self):
        grid = DepthGrid.from_range(0.0, 10.0, 40)
        # trapezoid half inside the grid (support [-2, 2], symmetric box)
        weights = distribute_intensity(grid, 10.0, -2.0, -2.0, 2.0, 2.0)
        assert np.isclose(weights.sum(), 5.0)

    def test_zero_area_gives_zero_weights(self):
        grid = DepthGrid.from_range(0.0, 10.0, 10)
        weights = distribute_intensity(grid, 5.0, 1.0, 1.0, 1.0, 1.0)
        assert np.allclose(weights, 0.0)

    def test_negative_intensity_distributes_negatively(self):
        grid = DepthGrid.from_range(0.0, 10.0, 10)
        weights = distribute_intensity(grid, -4.0, 2.0, 3.0, 4.0, 5.0)
        assert np.isclose(weights.sum(), -4.0)

    def test_multiple_trapezoids(self):
        grid = DepthGrid.from_range(0.0, 10.0, 10)
        weights = distribute_intensity(
            grid,
            np.array([1.0, 2.0]),
            np.array([1.0, 6.0]),
            np.array([2.0, 7.0]),
            np.array([3.0, 8.0]),
            np.array([4.0, 9.0]),
        )
        assert weights.shape == (2, 10)
        np.testing.assert_allclose(weights.sum(axis=1), [1.0, 2.0])

"""Tests for the persistent worker pool and the shared-memory slab arena.

The lifecycle guarantees the host-parallel layer rests on:

* one ``ProcessPoolExecutor`` spawn serves many runs (pool reuse);
* a pool inherited through ``fork()`` or broken by a worker death is
  lazily re-initialised, never reused;
* ``repro.pool()`` pins and pre-warms the shared pool and tears it down
  deterministically;
* every shared-memory segment an arena creates is unlinked by ``close()``,
  whatever happened in between.
"""

import numpy as np
import pytest

import repro
from multiprocessing import shared_memory
from repro.core.workerpool import (
    SlabArena,
    ThreadPool,
    WorkerPool,
    attach_slab,
    default_worker_count,
    pools_snapshot,
    shared_pool,
    shared_thread_pool,
    shutdown_all,
    shutdown_shared_pool,
)
from repro.utils.validation import ValidationError


def _square(x):
    return x * x


@pytest.fixture(autouse=True)
def _clean_shared_pool():
    """Each test starts and ends without a lingering shared pool."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------------------- #
class TestWorkerPool:
    def test_lazy_spawn_and_reuse(self):
        pool = WorkerPool(2)
        assert not pool.alive and pool.n_spawns == 0
        futures = [pool.submit(_square, n) for n in range(5)]
        assert [f.result() for f in futures] == [0, 1, 4, 9, 16]
        assert pool.alive
        assert pool.n_spawns == 1  # one executor served every submit
        pool.shutdown()
        assert not pool.alive

    def test_invalid_worker_count(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)
        with pytest.raises(ValidationError):
            shared_pool(0)

    def test_fork_safe_lazy_reinit(self):
        """A pool whose executor belongs to another process is respawned."""
        pool = WorkerPool(2)
        assert pool.submit(_square, 3).result() == 9
        pool._pid = pool._pid + 1  # simulate: this object crossed a fork()
        assert not pool.alive
        assert pool.submit(_square, 4).result() == 16
        assert pool.n_spawns == 2
        pool.shutdown()

    def test_broken_pool_respawns_on_next_use(self):
        pool = WorkerPool(2)
        assert pool.submit(_square, 2).result() == 4
        pool.mark_broken()
        assert not pool.alive
        assert pool.submit(_square, 5).result() == 25
        assert pool.n_spawns == 2
        pool.shutdown()

    def test_warm_forks_workers(self):
        pool = WorkerPool(2)
        assert pool.warm() is pool
        assert pool.alive and pool.n_spawns == 1
        pool.shutdown()


class TestSharedPool:
    def test_shared_pool_is_reused(self):
        a = shared_pool(2)
        b = shared_pool(2)
        assert a is b

    def test_resize_respawns(self):
        a = shared_pool(2)
        b = shared_pool(3)
        assert b is not a and b.max_workers == 3

    def test_pool_context_pins_and_tears_down(self):
        with repro.pool(2) as pinned:
            assert pinned.alive  # pre-warmed on entry
            assert shared_pool(2) is pinned
            # a different worker count must NOT respawn while pinned
            assert shared_pool(5) is pinned
            assert pinned.n_spawns == 1
        assert not pinned.alive  # outermost exit shuts the pool down

    def test_pool_context_nested(self):
        with repro.pool(2) as outer:
            with repro.pool(4) as inner:
                assert inner is outer  # the pin wins; no respawn
            assert outer.alive  # inner exit must not tear down the outer pin
        assert not outer.alive

    def test_pool_context_default_worker_count(self):
        with repro.pool() as pinned:
            assert pinned.max_workers == default_worker_count()
        assert default_worker_count() >= 2

    def test_pool_runs_reuse_one_spawn(self):
        """Many multiprocess runs inside one pool() share one executor."""
        from repro.core.depth_grid import DepthGrid
        from repro.core.session import session
        from tests.helpers import make_tiny_stack

        stack = make_tiny_stack(n_rows=6, n_cols=4, n_positions=9)
        sess = session(
            grid=DepthGrid.from_range(0.0, 100.0, 8), backend="multiprocess", n_workers=2
        )
        with repro.pool(2) as pinned:
            for _ in range(3):
                sess.run(stack)
            assert pinned.n_spawns == 1

    def test_heterogeneous_batch_reuses_one_pool(self, tmp_path):
        """Items with fewer rows than n_workers must not resize the shared
        pool: the pool is keyed on config.n_workers, never the row-clamped
        band count, so a mixed-size batch pays one spawn total."""
        from repro.core.depth_grid import DepthGrid
        from repro.core.session import session
        from repro.io.image_stack import save_wire_scan
        from tests.helpers import make_tiny_stack

        paths = []
        for index, n_rows in enumerate((3, 16, 3, 16)):
            stack = make_tiny_stack(n_rows=n_rows, n_cols=4, n_positions=9)
            path = tmp_path / f"scan_{index}.h5lite"
            save_wire_scan(path, stack)
            paths.append(str(path))
        sess = session(
            grid=DepthGrid.from_range(0.0, 100.0, 8), backend="multiprocess", n_workers=4
        )
        batch = sess.run_many(paths, max_workers=2)
        assert batch.n_ok == 4
        assert shared_pool(4).n_spawns == 1


# --------------------------------------------------------------------------- #
class TestSlabArena:
    def test_lease_recycles_segments(self):
        arena = SlabArena()
        first = arena.lease(1024)
        arena.release(first)
        second = arena.lease(1024)
        assert second.name == first.name  # recycled, not recreated
        assert arena.n_created == 1
        arena.close()
        _assert_unlinked(arena.created_names)

    def test_peak_leased_accounting(self):
        arena = SlabArena()
        slabs = [arena.lease(512) for _ in range(3)]
        assert arena.peak_leased == 3 and arena.n_leased == 3
        for slab in slabs:
            arena.release(slab)
        assert arena.n_leased == 0 and arena.peak_leased == 3
        arena.close()

    def test_close_unlinks_everything_even_leased(self):
        arena = SlabArena()
        leased = arena.lease(256)
        free = arena.lease(256)
        arena.release(free)
        arena.close()
        assert arena.closed
        _assert_unlinked([leased.name, free.name])
        arena.close()  # idempotent

    def test_lease_after_close_rejected(self):
        arena = SlabArena()
        arena.close()
        with pytest.raises(ValidationError):
            arena.lease(64)

    def test_release_after_close_unlinks(self):
        arena = SlabArena()
        slab = arena.lease(128)
        arena.close()
        arena.release(slab)  # late release must destroy, not resurrect
        _assert_unlinked([slab.name])

    def test_empty_lease_rejected(self):
        arena = SlabArena()
        with pytest.raises(ValidationError):
            arena.lease(0)
        arena.close()

    def test_attach_slab_roundtrip(self):
        arena = SlabArena()
        slab = arena.lease(8 * 16)
        view = np.ndarray((16,), dtype=np.float64, buffer=slab.buf)
        view[...] = np.arange(16.0)
        attached = attach_slab(slab.name)
        mirror = np.ndarray((16,), dtype=np.float64, buffer=attached.buf)
        np.testing.assert_array_equal(mirror, np.arange(16.0))
        del mirror
        attached.close()
        del view
        arena.close()
        _assert_unlinked([slab.name])

    def test_close_and_late_release_fully_idempotent(self):
        """Second close() and release()-after-close never raise or double-unlink."""
        arena = SlabArena()
        leased = arena.lease(256)
        returned = arena.lease(256)
        arena.release(returned)
        arena.close()
        # every combination of late calls must be a no-op, not an error: a
        # crashed run can interleave them in any order
        arena.close()
        arena.release(leased)
        arena.release(leased)
        arena.release(returned)
        arena.close()
        _assert_unlinked([leased.name, returned.name])
        assert arena.closed

    def test_double_release_does_not_duplicate_free_list(self):
        arena = SlabArena()
        slab = arena.lease(128)
        arena.release(slab)
        arena.release(slab)  # second release must not enqueue a duplicate
        first = arena.lease(128)
        second = arena.lease(128)
        assert first.name != second.name  # duplicate would hand the slab out twice
        arena.close()


# --------------------------------------------------------------------------- #
class TestInterpreterExitCleanup:
    """No /dev/shm segment may outlive the interpreter, even without close()."""

    def _run_subprocess(self, body: str) -> str:
        """Run *body* in a fresh interpreter rooted at the repo; returns stdout."""
        import os
        import subprocess
        import sys

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", body],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=repo_root,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_abandoned_arena_swept_at_exit(self):
        """An arena that never reaches close() is unlinked by the atexit sweep."""
        out = self._run_subprocess(
            "from repro.core.workerpool import SlabArena\n"
            "arena = SlabArena()\n"
            "slab = arena.lease(4096)\n"
            "free = arena.lease(4096)\n"
            "arena.release(free)\n"
            "print(slab.name)\n"
            "# exit WITHOUT close(): the atexit hook must sweep the segments\n"
        )
        _assert_unlinked([out.strip()])

    def test_multiprocess_run_without_explicit_shutdown_leaves_no_segments(self):
        """A real shm-dispatch run + plain interpreter exit leaks nothing.

        The subprocess reconstructs on the multiprocess backend (zero-copy
        dispatch), prints every segment name its executor's arena created,
        and exits without calling shutdown_shared_pool() or any close —
        the atexit-registered cleanup must leave /dev/shm empty.
        """
        out = self._run_subprocess(
            "from repro.core.backends.multiprocess import MultiprocessExecutor\n"
            "from repro.core.config import ReconstructionConfig\n"
            "from repro.core.engine import StackChunkSource, execute\n"
            "from repro.core.depth_grid import DepthGrid\n"
            "from tests.helpers import make_tiny_stack\n"
            "stack = make_tiny_stack(n_rows=4, n_cols=4, n_positions=9)\n"
            "config = ReconstructionConfig(\n"
            "    grid=DepthGrid.from_range(0.0, 100.0, 8),\n"
            "    backend='multiprocess', n_workers=2,\n"
            ")\n"
            "executor = MultiprocessExecutor(dispatch='shm')\n"
            "execute(StackChunkSource(stack), config, executor)\n"
            "for name in executor.arena.created_names:\n"
            "    print(name)\n"
            "# no shutdown_shared_pool(), no arena close: atexit must clean up\n"
        )
        names = [line for line in out.strip().splitlines() if line]
        assert names, "the shm run should have created at least one segment"
        _assert_unlinked(names)


# --------------------------------------------------------------------------- #
class TestUtilizationSnapshots:
    """The structured monitoring views the serve /metrics endpoint polls."""

    def test_worker_pool_utilization_shape_and_counts(self):
        pool = WorkerPool(2)
        snap = pool.utilization()
        assert snap == {"kind": "processes", "max_workers": 2, "alive": False,
                        "busy": 0, "utilization": 0.0, "n_spawns": 0,
                        "n_submitted": 0}
        assert [pool.submit(_square, n).result() for n in range(3)] == [0, 1, 4]
        snap = pool.utilization()
        assert snap["alive"] and snap["n_spawns"] == 1 and snap["n_submitted"] == 3
        assert snap["busy"] == 0 and snap["utilization"] == 0.0  # all done
        pool.shutdown()

    def test_thread_pool_tracks_busy_jobs(self):
        import threading as _threading

        pool = ThreadPool(2)
        gate = _threading.Event()
        futures = [pool.submit(gate.wait, 30) for _ in range(2)]
        for _ in range(200):  # both workers must report busy while parked
            if pool.utilization()["busy"] == 2:
                break
            _threading.Event().wait(0.01)
        snap = pool.utilization()
        assert snap["kind"] == "threads"
        assert snap["busy"] == 2 and snap["utilization"] == 1.0
        gate.set()
        assert all(f.result() for f in futures)
        for _ in range(200):  # and idle again once the gate opens
            if pool.utilization()["busy"] == 0:
                break
            _threading.Event().wait(0.01)
        assert pool.utilization()["busy"] == 0
        pool.shutdown()

    def test_pools_snapshot_reflects_shared_pools(self):
        assert pools_snapshot() == {"process_pool": None, "thread_pool": None}
        shared_pool(2).submit(_square, 3).result()
        shared_thread_pool(2).submit(_square, 4).result()
        snapshot = pools_snapshot()
        assert snapshot["process_pool"]["kind"] == "processes"
        assert snapshot["process_pool"]["n_submitted"] == 1
        assert snapshot["thread_pool"]["kind"] == "threads"
        assert snapshot["thread_pool"]["max_workers"] == 2
        shutdown_all()
        assert pools_snapshot() == {"process_pool": None, "thread_pool": None}

    def test_utilization_counts_failures_too(self):
        pool = ThreadPool(1)
        future = pool.submit(_square, "not-a-number")
        with pytest.raises(TypeError):
            future.result()
        snap = pool.utilization()
        assert snap["n_submitted"] == 1 and snap["busy"] == 0  # untracked on error
        pool.shutdown()

"""Unit tests for repro.geometry.wire and repro.geometry.scan."""

import numpy as np
import pytest

from repro.geometry.wire import Wire, WireEdge
from repro.geometry.scan import WireScan
from repro.utils.validation import ValidationError


class TestWireEdge:
    def test_enum_values_match_sign_convention(self):
        assert int(WireEdge.LEADING) == 1
        assert int(WireEdge.TRAILING) == -1


class TestWire:
    def test_default_radius(self):
        assert Wire().radius == 26.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            Wire(radius=-1.0)

    def test_non_x_axis_rejected(self):
        with pytest.raises(ValidationError):
            Wire(axis=(0.0, 1.0, 0.0))

    def test_occludes_direct_hit(self):
        wire = Wire(radius=26.0)
        source = np.array([0.0, 0.0])
        pixel = np.array([510_000.0, 0.0])
        center_on_path = np.array([1_500.0, 0.0])
        assert bool(wire.occludes(source, pixel, center_on_path))

    def test_occludes_far_miss(self):
        wire = Wire(radius=26.0)
        source = np.array([0.0, 0.0])
        pixel = np.array([510_000.0, 0.0])
        center_far = np.array([1_500.0, 5_000.0])
        assert not bool(wire.occludes(source, pixel, center_far))

    def test_occludes_wire_behind_pixel_does_not_block(self):
        wire = Wire(radius=26.0)
        source = np.array([0.0, 0.0])
        pixel = np.array([510_000.0, 0.0])
        center_beyond = np.array([600_000.0, 0.0])
        assert not bool(wire.occludes(source, pixel, center_beyond))

    def test_occludes_broadcasts(self):
        wire = Wire(radius=26.0)
        sources = np.stack([np.zeros(5), np.linspace(0, 100, 5)], axis=-1)  # (5, 2)
        pixel = np.array([510_000.0, 0.0])
        center = np.array([1_500.0, 0.3])
        blocked = wire.occludes(sources, pixel, center)
        assert blocked.shape == (5,)

    def test_occlusion_boundary_matches_radius(self):
        # moving the wire centre perpendicular to the ray by slightly more
        # than the radius unblocks the ray
        wire = Wire(radius=26.0)
        source = np.array([0.0, 0.0])
        pixel = np.array([510_000.0, 0.0])
        just_inside = np.array([1_500.0, 25.9])
        just_outside = np.array([1_500.0, 26.2])
        assert bool(wire.occludes(source, pixel, just_inside))
        assert not bool(wire.occludes(source, pixel, just_outside))

    def test_tangent_angles_basic(self):
        wire = Wire(radius=26.0)
        theta, dphi = wire.tangent_angles(np.array([510_000.0, 0.0]), np.array([1_500.0, 50.0]))
        assert 0 < dphi < np.pi / 2
        assert np.isclose(dphi, np.arcsin(26.0 / np.hypot(508_500.0, 50.0)))

    def test_tangent_angles_inside_wire_rejected(self):
        wire = Wire(radius=26.0)
        with pytest.raises(ValidationError):
            wire.tangent_angles(np.array([1_500.0, 0.0]), np.array([1_500.0, 10.0]))


class TestWireScan:
    def test_linear_scan_counts(self):
        scan = WireScan.linear(n_points=11)
        assert scan.n_points == 11
        assert scan.n_steps == 10

    def test_linear_scan_monotonic_z(self):
        scan = WireScan.linear(n_points=21, z_start=-100.0, z_stop=100.0)
        z = scan.positions[:, 1]
        assert np.all(np.diff(z) > 0)

    def test_linear_scan_constant_height(self):
        scan = WireScan.linear(n_points=7, height=2_000.0)
        np.testing.assert_allclose(scan.positions[:, 0], 2_000.0)

    def test_step_pair(self):
        scan = WireScan.linear(n_points=5)
        first, second = scan.step_pair(0)
        np.testing.assert_allclose(first, scan.positions[0])
        np.testing.assert_allclose(second, scan.positions[1])

    def test_step_pair_out_of_range(self):
        scan = WireScan.linear(n_points=5)
        with pytest.raises(ValidationError):
            scan.step_pair(4)

    def test_step_size(self):
        scan = WireScan.linear(n_points=11, z_start=0.0, z_stop=100.0)
        assert np.isclose(scan.step_size(), 10.0)

    def test_invalid_positions_shape(self):
        with pytest.raises(ValidationError):
            WireScan(wire=Wire(), positions_yz=np.zeros((3, 3)))

    def test_single_position_rejected(self):
        with pytest.raises(ValidationError):
            WireScan(wire=Wire(), positions_yz=np.zeros((1, 2)))

    def test_linear_requires_increasing_range(self):
        with pytest.raises(ValidationError):
            WireScan.linear(z_start=10.0, z_stop=-10.0)

    def test_positions_returns_copy(self):
        scan = WireScan.linear(n_points=5)
        pos = scan.positions
        pos[0, 0] = -1.0
        assert scan.positions[0, 0] != -1.0

"""Unit tests for the histogram accumulator, device layouts and chunk planner."""

import numpy as np
import pytest

from repro.core.chunking import ChunkPlan, estimate_chunk_device_bytes, plan_row_chunks
from repro.core.depth_grid import DepthGrid
from repro.core.histogram import DepthHistogram, add_pixel_intensity_at_index
from repro.core.layouts import Flat1DLayout, Pointer3DLayout, get_layout
from repro.cudasim.device import Device, GENERIC_LAPTOP_GPU
from repro.utils.validation import ValidationError


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 10.0, 5)


class TestDepthHistogram:
    def test_shape(self, grid):
        hist = DepthHistogram(grid, n_rows=3, n_cols=4)
        assert hist.shape == (5, 3, 4)

    def test_add_contributions_accumulates_repeats(self, grid):
        hist = DepthHistogram(grid, 2, 2)
        weights = np.ones((3, 5))
        hist.add_contributions(rows=[0, 0, 1], cols=[1, 1, 0], bin_weights=weights)
        assert np.isclose(hist.data[:, 0, 1].sum(), 10.0)
        assert np.isclose(hist.data[:, 1, 0].sum(), 5.0)

    def test_total_is_conserved(self, grid):
        hist = DepthHistogram(grid, 4, 4)
        rng = np.random.default_rng(0)
        weights = rng.random((20, 5))
        rows = rng.integers(0, 4, 20)
        cols = rng.integers(0, 4, 20)
        hist.add_contributions(rows, cols, weights)
        assert np.isclose(hist.data.sum(), weights.sum())

    def test_shape_validation(self, grid):
        hist = DepthHistogram(grid, 2, 2)
        with pytest.raises(ValidationError):
            hist.add_contributions([0], [0], np.ones((1, 3)))
        with pytest.raises(ValidationError):
            hist.add_contributions([0, 1], [0], np.ones((2, 5)))

    def test_out_of_range_pixels_rejected(self, grid):
        hist = DepthHistogram(grid, 2, 2)
        with pytest.raises(ValidationError):
            hist.add_contributions([2], [0], np.ones((1, 5)))

    def test_merge_partial(self, grid):
        hist = DepthHistogram(grid, 4, 3)
        partial = np.ones((5, 2, 3))
        hist.merge_partial(partial, row_start=1)
        assert hist.data[:, 0, :].sum() == 0
        assert np.isclose(hist.data[:, 1:3, :].sum(), partial.sum())

    def test_merge_partial_bad_rows(self, grid):
        hist = DepthHistogram(grid, 4, 3)
        with pytest.raises(ValidationError):
            hist.merge_partial(np.ones((5, 2, 3)), row_start=3)

    def test_add_histogram(self, grid):
        a = DepthHistogram(grid, 2, 2)
        b = DepthHistogram(grid, 2, 2)
        a.data[0, 0, 0] = 1.0
        b.data[0, 0, 0] = 2.0
        a.add_histogram(b)
        assert a.data[0, 0, 0] == 3.0

    def test_reset(self, grid):
        hist = DepthHistogram(grid, 2, 2)
        hist.data[...] = 5.0
        hist.reset()
        assert hist.data.sum() == 0.0

    def test_to_result(self, grid):
        hist = DepthHistogram(grid, 2, 2)
        result = hist.to_result({"note": "x"})
        assert result.shape == (5, 2, 2)
        assert result.metadata["note"] == "x"

    def test_flat_index_scatter(self, grid):
        cube = np.zeros((5, 2, 2))
        add_pixel_intensity_at_index(cube, [0, 0, 19], [1.0, 1.0, 3.0])
        assert cube[0, 0, 0] == 2.0
        assert cube[4, 1, 1] == 3.0


class TestLayouts:
    def test_get_layout(self):
        assert isinstance(get_layout("flat1d"), Flat1DLayout)
        assert isinstance(get_layout("pointer3d"), Pointer3DLayout)
        with pytest.raises(ValidationError):
            get_layout("bogus")

    def test_flat1d_single_transfer(self):
        device = Device(GENERIC_LAPTOP_GPU)
        cube = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        upload = Flat1DLayout().upload(device, cube)
        assert upload.n_transfers == 1
        assert upload.bytes_transferred == cube.nbytes
        np.testing.assert_array_equal(Flat1DLayout().read_cube(upload, cube.shape), cube)
        upload.free()

    def test_pointer3d_transfers_per_slab_plus_pointer_table(self):
        device = Device(GENERIC_LAPTOP_GPU)
        cube = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        layout = Pointer3DLayout()
        upload = layout.upload(device, cube)
        assert upload.n_transfers == cube.shape[0] + 1
        assert upload.bytes_transferred > cube.nbytes
        np.testing.assert_array_equal(layout.read_cube(upload, cube.shape), cube)
        upload.free()

    def test_pointer3d_needs_more_device_bytes(self):
        shape = (10, 8, 8)
        assert Pointer3DLayout().device_bytes_for(shape) > Flat1DLayout().device_bytes_for(shape)

    def test_pointer3d_costs_more_simulated_transfer_time(self):
        cube = np.ones((16, 8, 8), dtype=np.float64)
        device_flat = Device(GENERIC_LAPTOP_GPU)
        Flat1DLayout().upload(device_flat, cube)
        device_ptr = Device(GENERIC_LAPTOP_GPU)
        Pointer3DLayout().upload(device_ptr, cube)
        assert device_ptr.simulated_time > device_flat.simulated_time

    def test_download_roundtrip_both_layouts(self):
        cube = np.random.default_rng(0).random((3, 4, 5))
        for name in ("flat1d", "pointer3d"):
            device = Device(GENERIC_LAPTOP_GPU)
            layout = get_layout(name)
            upload = layout.upload(device, cube)
            out = np.zeros_like(cube)
            layout.download(device, upload, out)
            np.testing.assert_allclose(out, cube)
            upload.free()
            assert device.memory.used_bytes == 0

    def test_free_releases_memory(self):
        device = Device(GENERIC_LAPTOP_GPU)
        upload = Pointer3DLayout().upload(device, np.ones((4, 2, 2)))
        assert device.memory.used_bytes > 0
        upload.free()
        assert device.memory.used_bytes == 0

    def test_index_arithmetic_cost_differs(self):
        assert Flat1DLayout().index_arithmetic_flops > Pointer3DLayout().index_arithmetic_flops


class TestChunkPlanning:
    def test_estimate_grows_with_rows(self):
        small = estimate_chunk_device_bytes(1, 64, 50, 40)
        large = estimate_chunk_device_bytes(8, 64, 50, 40)
        assert large > small

    def test_estimate_counts_full_working_set(self):
        """The estimate must include the pixel-mask slab and the background
        terms (levels + resident image slab) — they used to be omitted, so
        the streaming planner could pick chunks overshooting the declared
        device budget on masked/background-subtracted runs."""
        rows, n_cols, n_positions, n_bins = 4, 64, 50, 40
        estimate = estimate_chunk_device_bytes(rows, n_cols, n_positions, n_bins, "flat1d")
        input_bytes = Flat1DLayout().device_bytes_for((n_positions, rows, n_cols), 8)
        output_bytes = n_bins * rows * n_cols * 8
        mask_bytes = rows * n_cols * 1
        background_bytes = n_positions * 8 + rows * n_cols * 8
        wire_table = n_positions * 2 * 8
        edge_tables = rows * 4 * 8
        assert estimate == (
            input_bytes + output_bytes + mask_bytes + background_bytes
            + wire_table + edge_tables
        )
        # the omitted terms are really in there: strictly above input+output
        # plus the small tables alone
        assert estimate > input_bytes + output_bytes + wire_table + edge_tables

    def test_plan_covers_all_rows(self):
        plan = plan_row_chunks(100, 64, 50, 40, device_memory_bytes=10 * 1024**2)
        assert plan.covers_all_rows()

    def test_fixed_rows_per_chunk(self):
        plan = plan_row_chunks(10, 16, 20, 10, device_memory_bytes=64 * 1024**2, rows_per_chunk=2)
        assert plan.rows_per_chunk == 2
        assert plan.n_chunks == 5

    def test_auto_rows_respect_memory(self):
        plan = plan_row_chunks(256, 128, 60, 50, device_memory_bytes=2 * 1024**2)
        assert plan.bytes_per_chunk <= 0.9 * 2 * 1024**2
        assert plan.covers_all_rows()

    def test_single_row_does_not_fit(self):
        with pytest.raises(ValidationError):
            plan_row_chunks(10, 4096, 500, 400, device_memory_bytes=1024)

    def test_fixed_chunk_too_big_rejected(self):
        with pytest.raises(ValidationError):
            plan_row_chunks(64, 1024, 100, 50, device_memory_bytes=1024**2, rows_per_chunk=64)

    def test_larger_memory_means_fewer_chunks(self):
        small = plan_row_chunks(128, 64, 50, 40, device_memory_bytes=2 * 1024**2)
        large = plan_row_chunks(128, 64, 50, 40, device_memory_bytes=64 * 1024**2)
        assert large.n_chunks <= small.n_chunks

    def test_pointer3d_layout_needs_more_chunks_or_equal(self):
        flat = plan_row_chunks(128, 64, 50, 40, device_memory_bytes=2 * 1024**2, layout="flat1d")
        ptr = plan_row_chunks(128, 64, 50, 40, device_memory_bytes=2 * 1024**2, layout="pointer3d")
        assert ptr.n_chunks >= flat.n_chunks

    def test_summary_mentions_chunks(self):
        plan = plan_row_chunks(16, 16, 20, 10, device_memory_bytes=64 * 1024**2, rows_per_chunk=4)
        assert "chunk" in plan.summary()

    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            plan_row_chunks(0, 4, 10, 10, device_memory_bytes=1024**2)
        with pytest.raises(ValidationError):
            plan_row_chunks(4, 4, 1, 10, device_memory_bytes=1024**2)

    def test_plan_is_frozen_dataclass(self):
        plan = plan_row_chunks(8, 8, 10, 10, device_memory_bytes=1024**2)
        assert isinstance(plan, ChunkPlan)
        with pytest.raises(AttributeError):
            plan.n_rows = 3

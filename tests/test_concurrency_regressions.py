"""Regression tests for the shared-state fixes the concurrency rules drove.

The ``thread-escape`` sweep found unlocked read-modify-writes on counters
that are bumped from pool threads while other threads read them: the
ResultCache probe counters, the ServeMetrics job counters, the worker
pools' ``n_submitted``, and the atexit-registration latch.  Each fix gets
a hammer test here: N threads x M bumps must land on exactly N*M —
before the locks, ``+=`` lost increments under contention.
"""

import threading

from repro.core.cache import ResultCache
from repro.core.workerpool import ThreadPool
from repro.serve.metrics import ServeMetrics

N_THREADS = 8
N_CALLS = 250


def _hammer(target, n_threads=N_THREADS, n_calls=N_CALLS):
    start = threading.Barrier(n_threads)

    def spin():
        start.wait()
        for _ in range(n_calls):
            target()

    workers = [threading.Thread(target=spin) for _ in range(n_threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


# --------------------------------------------------------------------------- #
class TestResultCacheCounters:
    def test_concurrent_misses_counted_exactly(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        _hammer(lambda: cache.get("no-such-key"))
        assert cache.counters()["misses"] == N_THREADS * N_CALLS

    def test_counters_snapshot_is_coherent(self, tmp_path):
        # counters() must read all four under the lock: a snapshot taken
        # mid-hammer may lag, but the final one is exact and non-negative
        cache = ResultCache(root=str(tmp_path))
        snapshots = []

        def probe_and_snapshot():
            cache.get("missing")
            snapshots.append(cache.counters())

        _hammer(probe_and_snapshot, n_threads=4, n_calls=100)
        # hit_rate is derived from the same locked snapshot, so the
        # probe total it implies can never exceed the final count
        assert all(0 <= s["probes"] <= 400 for s in snapshots)
        assert cache.counters()["misses"] == 400


# --------------------------------------------------------------------------- #
class TestServeMetricsCounters:
    def test_concurrent_inc_counted_exactly(self):
        metrics = ServeMetrics()
        _hammer(lambda: metrics.inc("submitted"))
        assert metrics.counts["submitted"] == N_THREADS * N_CALLS

    def test_to_dict_snapshots_under_contention(self):
        metrics = ServeMetrics()
        documents = []

        def bump_and_render():
            metrics.inc("computed")
            documents.append(metrics.to_dict())

        _hammer(bump_and_render, n_threads=4, n_calls=100)
        assert metrics.counts["computed"] == 400
        assert all(0 <= d["jobs"]["computed"] <= 400 for d in documents)


# --------------------------------------------------------------------------- #
class TestWorkerPoolSubmitCounter:
    def test_concurrent_submits_counted_exactly(self):
        pool = ThreadPool(max_workers=2)
        try:
            futures = []
            submit_lock = threading.Lock()

            def submit_one():
                future = pool.submit(lambda: None)
                with submit_lock:
                    futures.append(future)

            _hammer(submit_one, n_threads=4, n_calls=50)
            for future in futures:
                future.result(timeout=30)
            assert pool.n_submitted == 200
        finally:
            pool.shutdown()


# --------------------------------------------------------------------------- #
class TestAtexitLatch:
    def test_register_atexit_races_to_a_single_registration(self, monkeypatch):
        import repro.core.workerpool as workerpool

        calls = []
        monkeypatch.setattr(workerpool.atexit, "register",
                            lambda fn: calls.append(fn))
        monkeypatch.setattr(workerpool, "_atexit_registered", False)
        _hammer(workerpool._register_atexit, n_threads=8, n_calls=5)
        # one registration = the three teardown hooks, exactly once each
        assert len(calls) == 3
        assert len(set(calls)) == 3

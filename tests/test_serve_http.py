"""End-to-end tests of the ``repro-serve`` daemon over real HTTP.

One module-scoped daemon (fresh cache root, free port) serves most tests;
the admission-semantics tests that need pristine counters boot their own.
Every request goes through :class:`repro.serve.ServeClient` — the bundled
client is part of the surface under test.
"""

import concurrent.futures
import http.client
import json
import threading

import pytest

import repro
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.io.image_stack import save_wire_scan
from repro.serve import (
    Backpressure,
    JobFailed,
    ServeClient,
    ServeError,
    ServeSettings,
    start_in_thread,
)
from tests.helpers import make_tiny_stack


def _config() -> ReconstructionConfig:
    return ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))


@pytest.fixture(scope="module")
def scan_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-data") / "scan.h5lite"
    save_wire_scan(str(path), make_tiny_stack(n_rows=4, n_cols=3, n_positions=15))
    return str(path)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    settings = ServeSettings(
        port=0, workers=2, cache=str(tmp_path_factory.mktemp("serve-cache"))
    )
    with start_in_thread(settings) as handle:
        yield handle


@pytest.fixture()
def client(daemon):
    return ServeClient(base_url=daemon.base_url, client_id="pytest")


def _fresh_scan(tmp_path, seed: int) -> str:
    stack = make_tiny_stack(n_rows=4, n_cols=3, n_positions=15)
    stack.images[0, 0, 0] += seed  # distinct bytes => distinct fingerprint
    path = tmp_path / f"scan-{seed}.h5lite"
    save_wire_scan(str(path), stack)
    return str(path)


# --------------------------------------------------------------------------- #
class TestHttpBasics:
    def test_healthz(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["version"] == repro.__version__

    def test_submit_poll_fetch(self, client, scan_file):
        accepted, result = client.submit_and_wait(scan_file, config=_config())
        job = client.status(accepted["job"]["id"])
        assert job["state"] == "done"
        assert job["served"] in ("computed", "cache", "collapsed")
        assert result["provenance"]["config"]["grid"]["n_bins"] == 12

    def test_analysis_rides_along(self, client, scan_file):
        _accepted, result = client.submit_and_wait(
            scan_file, config=_config(), analyze=["peaks", ("fwhm", {})]
        )
        ops = [record["op"] for record in result["analysis"]["provenance"]["ops"]]
        assert ops == ["peaks", "fwhm"]
        assert len(result["analysis"]["results"]) == 2

    def test_session_objects_submit_directly(self, client, scan_file):
        session = repro.session(grid=repro.DepthGrid.from_range(0.0, 100.0, 12))
        accepted, _result = client.submit_and_wait(scan_file, session=session)
        assert accepted["job"]["client"] == "pytest"

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.status("no-such-job")
        assert excinfo.value.status == 404

    def test_bad_submission_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/jobs", {"source": {"path": "/missing"}})
        assert excinfo.value.status == 400

    def test_bad_json_400(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/jobs")
        assert excinfo.value.status == 405

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_oversized_body_413(self, daemon):
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"x" * ((1 << 20) + 1))
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_metrics_document_shape(self, client):
        metrics = client.metrics()
        for section in ("jobs", "queue", "cache", "singleflight", "latency", "pools"):
            assert section in metrics
        assert set(metrics["jobs"]) >= {"submitted", "computed", "cache_hits",
                                        "collapsed", "rejected", "completed"}
        assert metrics["queue"]["capacity"] == 64
        assert metrics["draining"] is False
        assert metrics["cache_root"]


# --------------------------------------------------------------------------- #
class TestAdmission:
    """Cache-first admission and single-flight collapsing, via /metrics."""

    def test_warm_resubmit_is_a_cache_hit(self, tmp_path):
        settings = ServeSettings(port=0, workers=2, cache=str(tmp_path / "cache"))
        with start_in_thread(settings) as handle:
            client = ServeClient(base_url=handle.base_url)
            scan = _fresh_scan(tmp_path, seed=1)
            first, _ = client.submit_and_wait(scan, config=_config())
            assert first["dedup"] == "scheduled"
            second, result = client.submit_and_wait(scan, config=_config())
            assert second["dedup"] == "hit"
            assert client.status(second["job"]["id"])["served"] == "cache"
            assert result["provenance"]["config"]["grid"]["n_bins"] == 12
            jobs = client.metrics()["jobs"]
            assert jobs["computed"] == 1  # the resubmit never touched the pool
            assert jobs["cache_hits"] == 1
            assert jobs["completed"] == 2

    def test_concurrent_identical_submissions_compute_once(self, tmp_path):
        settings = ServeSettings(port=0, workers=2, cache=str(tmp_path / "cache"))
        with start_in_thread(settings) as handle:
            client = ServeClient(base_url=handle.base_url)
            scan = _fresh_scan(tmp_path, seed=2)
            n_clients = 8
            # hold the leader's computation until every submission is in:
            # a tiny scan computes in milliseconds, so without the gate the
            # leader can finish (and store to cache) before the other seven
            # submissions arrive, turning would-be collapses into cache hits
            gate = threading.Event()
            server = handle.server
            original = server._compute

            def _gated(job):
                gate.wait(timeout=30)
                return original(job)

            server._compute = _gated
            try:
                with concurrent.futures.ThreadPoolExecutor(n_clients) as pool:
                    payloads = list(pool.map(
                        lambda _: client.submit(scan, config=_config()),
                        range(n_clients),
                    ))
            finally:
                server._compute = original
                gate.set()
            results = [client.wait(p["job"]["id"], timeout_s=60) for p in payloads]
            assert all(r["provenance"] for r in results)
            dedups = sorted(p["dedup"] for p in payloads)
            assert dedups.count("scheduled") == 1
            assert dedups.count("collapsed") == n_clients - 1
            metrics = client.metrics()
            assert metrics["jobs"]["computed"] == 1
            assert metrics["jobs"]["collapsed"] == n_clients - 1
            assert metrics["jobs"]["completed"] == n_clients
            assert metrics["singleflight"]["fast_path_rate"] == pytest.approx(
                (n_clients - 1) / n_clients
            )

    def test_no_cache_daemon_still_serves(self, tmp_path):
        settings = ServeSettings(port=0, workers=1, cache=False)
        with start_in_thread(settings) as handle:
            client = ServeClient(base_url=handle.base_url)
            scan = _fresh_scan(tmp_path, seed=3)
            for expected_computed in (1, 2):  # every submit computes
                _accepted, _result = client.submit_and_wait(scan, config=_config())
                assert client.metrics()["jobs"]["computed"] == expected_computed
            assert client.metrics()["cache"] == {}


# --------------------------------------------------------------------------- #
class TestBackpressureAndCancel:
    @pytest.fixture()
    def tiny_daemon(self, tmp_path):
        """One worker, queue depth 2, no cache: easy to saturate and inspect."""
        settings = ServeSettings(
            port=0, workers=1, queue_depth=2, cache=False, retry_after_s=3.0
        )
        with start_in_thread(settings) as handle:
            yield handle

    def _hold_the_worker(self, handle, scan):
        """Park a long job on the single worker so the queue backs up."""
        gate = threading.Event()
        server = handle.server
        original = server._compute

        def _slow(job):
            gate.wait(timeout=30)
            return original(job)

        server._compute = _slow
        client = ServeClient(base_url=handle.base_url)
        blocker = client.submit(scan, config=_config())["job"]["id"]
        # the blocker must be RUNNING (not queued) before tests continue
        deadline = threading.Event()
        for _ in range(200):
            if client.status(blocker)["state"] == "running":
                break
            deadline.wait(0.01)
        else:  # pragma: no cover - diagnostics only
            raise AssertionError("blocker job never started")
        return gate, client, blocker, original

    def test_full_queue_gets_429_with_retry_after(self, tiny_daemon, tmp_path):
        scan = _fresh_scan(tmp_path, seed=4)
        gate, client, _blocker, original = self._hold_the_worker(tiny_daemon, scan)
        try:
            for _ in range(2):  # fill the two queue slots
                client.submit(scan, config=_config())
            with pytest.raises(Backpressure) as excinfo:
                client.submit(scan, config=_config())
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s >= 3.0
            assert client.metrics()["jobs"]["rejected"] == 1
        finally:
            tiny_daemon.server._compute = original
            gate.set()

    def test_cancel_queued_then_conflict_on_terminal(self, tiny_daemon, tmp_path):
        scan = _fresh_scan(tmp_path, seed=5)
        gate, client, blocker, original = self._hold_the_worker(tiny_daemon, scan)
        try:
            queued = client.submit(scan, config=_config())["job"]["id"]
            cancelled = client.cancel(queued)
            assert cancelled["state"] == "cancelled"
            # cancelling again conflicts: the job is already terminal
            with pytest.raises(ServeError) as excinfo:
                client.cancel(queued)
            assert excinfo.value.status == 409
            # fetching a cancelled job's result conflicts too
            with pytest.raises(ServeError) as excinfo:
                client._request("GET", f"/v1/jobs/{queued}/result")
            assert excinfo.value.status == 409
            assert client.metrics()["jobs"]["cancelled"] == 1
        finally:
            tiny_daemon.server._compute = original
            gate.set()
        client.wait(blocker, timeout_s=60)

    def test_cancel_running_job_conflicts(self, tiny_daemon, tmp_path):
        scan = _fresh_scan(tmp_path, seed=6)
        gate, client, blocker, original = self._hold_the_worker(tiny_daemon, scan)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.cancel(blocker)
            assert excinfo.value.status == 409
        finally:
            tiny_daemon.server._compute = original
            gate.set()
        client.wait(blocker, timeout_s=60)

    def test_result_while_pending_is_none(self, tiny_daemon, tmp_path):
        scan = _fresh_scan(tmp_path, seed=7)
        gate, client, blocker, original = self._hold_the_worker(tiny_daemon, scan)
        try:
            assert client.result(blocker) is None  # 202: still running
        finally:
            tiny_daemon.server._compute = original
            gate.set()
        assert client.result(blocker) is not None or client.wait(blocker, timeout_s=60)


# --------------------------------------------------------------------------- #
class TestFailurePaths:
    def test_failed_job_reports_error(self, tmp_path):
        """A source that fingerprints but fails to reconstruct => failed job."""
        settings = ServeSettings(port=0, workers=1, cache=False)
        with start_in_thread(settings) as handle:
            client = ServeClient(base_url=handle.base_url)
            scan = _fresh_scan(tmp_path, seed=8)
            server = handle.server
            original = server._compute

            def _boom(job):
                raise RuntimeError("synthetic compute failure")

            server._compute = _boom
            try:
                job_id = client.submit(scan, config=_config())["job"]["id"]
                with pytest.raises(JobFailed) as excinfo:
                    client.wait(job_id, timeout_s=30)
                assert "synthetic compute failure" in str(excinfo.value)
                assert client.metrics()["jobs"]["failed"] == 1
            finally:
                server._compute = original

    def test_per_job_timeout_fails_the_job(self, tmp_path):
        settings = ServeSettings(port=0, workers=1, cache=False)
        with start_in_thread(settings) as handle:
            client = ServeClient(base_url=handle.base_url)
            scan = _fresh_scan(tmp_path, seed=9)
            server = handle.server
            gate = threading.Event()
            original = server._compute

            def _slow(job):
                gate.wait(timeout=30)
                return original(job)

            server._compute = _slow
            try:
                job_id = client.submit(
                    scan, config=_config(), timeout_s=0.2
                )["job"]["id"]
                with pytest.raises(JobFailed) as excinfo:
                    client.wait(job_id, timeout_s=30)
                assert "timed out" in str(excinfo.value)
                assert client.metrics()["jobs"]["timeouts"] == 1
            finally:
                gate.set()
                server._compute = original

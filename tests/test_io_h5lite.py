"""Unit tests for the h5lite container format."""

import numpy as np
import pytest

from repro.io.h5lite import H5LiteError, H5LiteFile


class TestWriteRead:
    def test_dataset_roundtrip(self, tmp_path):
        path = tmp_path / "a.h5lite"
        data = np.random.default_rng(0).random((5, 4, 3))
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("cube", data)
        with H5LiteFile(path, "r") as fh:
            np.testing.assert_array_equal(fh["cube"][...], data)

    def test_multiple_dtypes(self, tmp_path):
        path = tmp_path / "dtypes.h5lite"
        arrays = {
            "f64": np.arange(6, dtype=np.float64).reshape(2, 3),
            "f32": np.arange(6, dtype=np.float32),
            "i64": np.arange(6, dtype=np.int64),
            "u8": np.arange(6, dtype=np.uint8),
            "bool": np.array([True, False, True]),
        }
        with H5LiteFile(path, "w") as fh:
            for name, arr in arrays.items():
                fh.create_dataset(name, arr)
        with H5LiteFile(path, "r") as fh:
            for name, arr in arrays.items():
                out = fh[name][...]
                assert out.dtype == arr.dtype
                np.testing.assert_array_equal(out, arr)

    def test_groups_and_nested_paths(self, tmp_path):
        path = tmp_path / "groups.h5lite"
        with H5LiteFile(path, "w") as fh:
            grp = fh.create_group("entry/data")
            grp.create_dataset("images", np.ones((2, 2)))
            fh.create_dataset("entry/extra/values", np.arange(3))
        with H5LiteFile(path, "r") as fh:
            assert "entry" in fh
            assert "entry/data/images" in fh
            np.testing.assert_array_equal(fh["entry/data/images"][...], np.ones((2, 2)))
            np.testing.assert_array_equal(fh["entry"]["extra/values"][...], np.arange(3))

    def test_attributes_roundtrip(self, tmp_path):
        path = tmp_path / "attrs.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.attrs["title"] = "test"
            grp = fh.create_group("g")
            grp.attrs["count"] = 3
            grp.attrs["values"] = [1.5, 2.5]
            ds = grp.create_dataset("d", np.zeros(2), attrs={"unit": "um"})
            assert ds.attrs["unit"] == "um"
        with H5LiteFile(path, "r") as fh:
            assert fh.attrs["title"] == "test"
            assert fh["g"].attrs["count"] == 3
            assert fh["g"].attrs["values"] == [1.5, 2.5]
            assert fh["g/d"].attrs["unit"] == "um"

    def test_numpy_scalar_attributes_serialised(self, tmp_path):
        path = tmp_path / "npattrs.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.attrs["n"] = np.int64(5)
            fh.attrs["x"] = np.float64(2.5)
            fh.create_dataset("d", np.zeros(1))
        with H5LiteFile(path, "r") as fh:
            assert fh.attrs["n"] == 5
            assert fh.attrs["x"] == 2.5

    def test_scalar_dataset(self, tmp_path):
        path = tmp_path / "scalar.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("value", np.float64(3.25))
        with H5LiteFile(path, "r") as fh:
            assert float(fh["value"][...]) == 3.25


class TestChunkedAccess:
    def test_partial_reads_match_full(self, tmp_path):
        path = tmp_path / "chunked.h5lite"
        data = np.random.default_rng(1).random((11, 3, 4))
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("cube", data, chunk_rows=4)
        with H5LiteFile(path, "r") as fh:
            ds = fh["cube"]
            np.testing.assert_array_equal(ds[...], data)
            np.testing.assert_array_equal(ds[2:7], data[2:7])
            np.testing.assert_array_equal(ds[8:], data[8:])
            np.testing.assert_array_equal(ds[3], data[3])

    def test_partial_read_unchunked(self, tmp_path):
        path = tmp_path / "contig.h5lite"
        data = np.arange(24, dtype=np.float64).reshape(6, 4)
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", data)
        with H5LiteFile(path, "r") as fh:
            np.testing.assert_array_equal(fh["d"][1:3], data[1:3])

    def test_empty_slice(self, tmp_path):
        path = tmp_path / "empty.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", np.arange(10.0), chunk_rows=3)
        with H5LiteFile(path, "r") as fh:
            assert fh["d"][5:5].shape == (0,)

    def test_strided_slice_rejected(self, tmp_path):
        path = tmp_path / "stride.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", np.arange(10.0))
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(H5LiteError):
                fh["d"][::2]

    def test_dataset_metadata(self, tmp_path):
        path = tmp_path / "meta.h5lite"
        data = np.zeros((7, 2))
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", data, chunk_rows=2)
        with H5LiteFile(path, "r") as fh:
            ds = fh["d"]
            assert ds.shape == (7, 2)
            assert ds.ndim == 2
            assert ds.size == 14
            assert ds.nbytes == 14 * 8
            assert ds.chunk_rows == 2


class TestErrors:
    def test_bad_mode(self, tmp_path):
        with pytest.raises(H5LiteError):
            H5LiteFile(tmp_path / "x.h5lite", "a")

    def test_missing_file(self, tmp_path):
        with pytest.raises(H5LiteError):
            H5LiteFile(tmp_path / "missing.h5lite", "r")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.h5lite"
        path.write_bytes(b"NOTMAGIC" + b"\0" * 16)
        with pytest.raises(H5LiteError):
            H5LiteFile(path, "r")

    def test_write_to_readonly(self, tmp_path):
        path = tmp_path / "ro.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", np.zeros(1))
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(H5LiteError):
                fh.create_dataset("e", np.zeros(1))

    def test_duplicate_dataset_rejected(self, tmp_path):
        with H5LiteFile(tmp_path / "dup.h5lite", "w") as fh:
            fh.create_dataset("d", np.zeros(1))
            with pytest.raises(H5LiteError):
                fh.create_dataset("d", np.zeros(1))

    def test_missing_key(self, tmp_path):
        path = tmp_path / "k.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", np.zeros(1))
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(KeyError):
                fh["nope"]

    def test_dataset_used_as_group_rejected(self, tmp_path):
        path = tmp_path / "ds.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("d", np.zeros(1))
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(H5LiteError):
                fh["d/sub"]

    def test_invalid_path_component(self, tmp_path):
        with H5LiteFile(tmp_path / "p.h5lite", "w") as fh:
            with pytest.raises(H5LiteError):
                fh.create_dataset("../evil", np.zeros(1))

    def test_group_keys_and_visit(self, tmp_path):
        path = tmp_path / "tree.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("a/x", np.zeros(1))
            fh.create_dataset("a/y", np.zeros(1))
            fh.create_dataset("b", np.zeros(1))
        with H5LiteFile(path, "r") as fh:
            assert set(fh.root.keys()) == {"a", "b"}
            names = [obj.name for obj in fh.root.visit()]
            assert "/a/x" in names and "/a/y" in names and "/b" in names
            assert set(fh["a"].datasets()) == {"x", "y"}


class TestWindowedReads:
    """Sub-axis window reads: the out-of-core streaming primitive."""

    @pytest.fixture()
    def cube_file(self, tmp_path):
        rng = np.random.default_rng(42)
        cube = rng.random((9, 12, 5))
        path = tmp_path / "cube.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("chunked", cube, chunk_rows=4)
            fh.create_dataset("contiguous", cube)
            fh.create_dataset("matrix", cube[0])
        return path, cube

    def test_read_window_matches_slicing(self, cube_file):
        path, cube = cube_file
        with H5LiteFile(path, "r") as fh:
            for name in ("chunked", "contiguous"):
                ds = fh[name]
                for (i, j, k, l) in [(0, 9, 0, 12), (2, 7, 3, 9), (0, 1, 11, 12), (8, 9, 0, 1)]:
                    np.testing.assert_array_equal(
                        ds.read_window(i, j, k, l), cube[i:j, k:l]
                    )

    def test_two_axis_getitem(self, cube_file):
        path, cube = cube_file
        with H5LiteFile(path, "r") as fh:
            np.testing.assert_array_equal(fh["chunked"][1:6, 2:9], cube[1:6, 2:9])
            np.testing.assert_array_equal(fh["chunked"][:, 2:9], cube[:, 2:9])
            np.testing.assert_array_equal(fh["matrix"][3:7, 1:4], cube[0][3:7, 1:4])

    def test_window_defaults_cover_full_axes(self, cube_file):
        path, cube = cube_file
        with H5LiteFile(path, "r") as fh:
            np.testing.assert_array_equal(fh["chunked"].read_window(), cube)

    def test_empty_window(self, cube_file):
        path, cube = cube_file
        with H5LiteFile(path, "r") as fh:
            out = fh["chunked"].read_window(2, 5, 4, 4)
            assert out.shape == (3, 0, 5)

    def test_window_clamps_overruns(self, cube_file):
        path, cube = cube_file
        with H5LiteFile(path, "r") as fh:
            np.testing.assert_array_equal(
                fh["chunked"].read_window(5, 99, 10, 99), cube[5:, 10:]
            )

    def test_window_requires_two_dims(self, tmp_path):
        path = tmp_path / "vec.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("v", np.arange(6.0))
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(H5LiteError):
                fh["v"].read_window(0, 3, 0, 1)

    def test_window_rejects_strided_slices(self, cube_file):
        path, _cube = cube_file
        with H5LiteFile(path, "r") as fh:
            with pytest.raises(H5LiteError):
                fh["chunked"][0:5:2, 0:3]
            with pytest.raises(H5LiteError):
                fh["chunked"][0:5, 0:3, 0:1]

    def test_window_read_while_writing(self, tmp_path):
        cube = np.arange(24.0).reshape(2, 4, 3)
        with H5LiteFile(tmp_path / "w.h5lite", "w") as fh:
            ds = fh.create_dataset("c", cube, chunk_rows=1)
            np.testing.assert_array_equal(ds.read_window(0, 2, 1, 3), cube[:, 1:3])


class TestJsonAttrs:
    """The eagerly-validated JSON-attrs block (run-provenance storage)."""

    def test_nested_document_round_trip(self, tmp_path):
        path = tmp_path / "attrs.h5lite"
        record = {"config": {"grid": {"start": 0.0, "n_bins": 25}}, "notes": ["a", "b"],
                  "timings": {"wall": 1.25}, "nothing": None, "flag": True}
        with H5LiteFile(path, "w") as fh:
            grp = fh.create_group("entry")
            grp.set_json_attr("run_record", record)
        with H5LiteFile(path, "r") as fh:
            assert fh["entry"].get_json_attr("run_record") == record

    def test_normalized_at_set_time(self, tmp_path):
        with H5LiteFile(tmp_path / "n.h5lite", "w") as fh:
            grp = fh.create_group("g")
            grp.set_json_attr("v", {"t": (1, 2), "np": np.float64(2.5), "arr": np.arange(3)})
            # what was stored is already the post-round-trip form
            assert grp.attrs["v"] == {"t": [1, 2], "np": 2.5, "arr": [0, 1, 2]}

    def test_unserialisable_fails_at_set_not_close(self, tmp_path):
        with H5LiteFile(tmp_path / "bad.h5lite", "w") as fh:
            grp = fh.create_group("g")
            with pytest.raises(H5LiteError, match="not JSON-serialisable"):
                grp.set_json_attr("v", object())
            with pytest.raises(H5LiteError, match="not JSON-serialisable"):
                grp.set_json_attr("nan", float("nan"))

    def test_get_returns_copies_and_default(self, tmp_path):
        with H5LiteFile(tmp_path / "c.h5lite", "w") as fh:
            grp = fh.create_group("g")
            grp.set_json_attr("v", {"inner": [1]})
            grp.get_json_attr("v")["inner"].append(2)
            assert grp.get_json_attr("v") == {"inner": [1]}
            assert grp.get_json_attr("missing", default=7) == 7

    def test_dataset_and_root_json_attrs(self, tmp_path):
        path = tmp_path / "d.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.set_json_attr("root_doc", {"k": 1})
            ds = fh.create_dataset("v", np.arange(3.0))
            ds.set_json_attr("doc", {"units": "um"})
        with H5LiteFile(path, "r") as fh:
            assert fh.get_json_attr("root_doc") == {"k": 1}
            assert fh["v"].get_json_attr("doc") == {"units": "um"}


class TestCorruptHeaders:
    """Malformed files with a valid magic must raise H5LiteError, not leak
    ValueError/JSONDecodeError to callers (batch reloads rely on this)."""

    def test_truncated_after_magic(self, tmp_path):
        path = tmp_path / "trunc.h5lite"
        path.write_bytes(b"H5LITE01" + b"\x01\x02\x03")  # not even a header length
        with pytest.raises(H5LiteError):
            H5LiteFile(path, "r")

    def test_garbage_header_of_advertised_length(self, tmp_path):
        path = tmp_path / "garbage.h5lite"
        body = b"{not json"
        path.write_bytes(b"H5LITE01" + np.uint64(len(body)).tobytes() + body)
        with pytest.raises(H5LiteError, match="corrupt h5lite header"):
            H5LiteFile(path, "r")

    def test_header_missing_tree(self, tmp_path):
        path = tmp_path / "notree.h5lite"
        body = b'{"attrs": {}}'
        path.write_bytes(b"H5LITE01" + np.uint64(len(body)).tobytes() + body)
        with pytest.raises(H5LiteError, match="no tree"):
            H5LiteFile(path, "r")

    def test_malformed_dataset_node(self, tmp_path):
        path = tmp_path / "badnode.h5lite"
        body = b'{"tree": {"type": "group", "children": {"d": {"type": "dataset"}}}}'
        path.write_bytes(b"H5LITE01" + np.uint64(len(body)).tobytes() + body)
        with pytest.raises(H5LiteError, match="bad dataset"):
            H5LiteFile(path, "r")

    def test_valid_json_non_object_header(self, tmp_path):
        path = tmp_path / "list.h5lite"
        body = b"[1, 2, 3]"
        path.write_bytes(b"H5LITE01" + np.uint64(len(body)).tobytes() + body)
        with pytest.raises(H5LiteError, match="not a JSON object"):
            H5LiteFile(path, "r")

    def test_malformed_attrs_block(self, tmp_path):
        path = tmp_path / "badattrs.h5lite"
        body = b'{"attrs": [1], "tree": {"type": "group", "children": {}}}'
        path.write_bytes(b"H5LITE01" + np.uint64(len(body)).tobytes() + body)
        with pytest.raises(H5LiteError, match="malformed attrs"):
            H5LiteFile(path, "r")

"""Unit tests for atomics, the performance models, streams and the profiler."""

import numpy as np
import pytest

from repro.cudasim.atomic import atomic_add, atomic_add_double_cas, scatter_add
from repro.cudasim.device import Device, GENERIC_LAPTOP_GPU
from repro.cudasim.perfmodel import HostPerformanceModel, PerformanceModel
from repro.cudasim.profiler import Profiler
from repro.cudasim.stream import Event, Stream


class TestAtomicAdd:
    def test_repeated_indices_accumulate(self):
        out = np.zeros(4)
        atomic_add(out, [1, 1, 1, 3], [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(out, [0.0, 6.0, 0.0, 4.0])

    def test_matches_serial_loop(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 50, size=500)
        values = rng.normal(size=500)
        fast = np.zeros(50)
        atomic_add(fast, indices, values)
        slow = np.zeros(50)
        for i, v in zip(indices, values):
            slow[i] += v
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=1e-12)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            atomic_add(np.zeros(3), [3], [1.0])

    def test_requires_flat_buffer(self):
        with pytest.raises(ValueError):
            atomic_add(np.zeros((2, 2)), [0], [1.0])

    def test_cas_emulation_matches_plain_add(self):
        plain = np.zeros(8)
        cas = np.zeros(8)
        values = [0.5, 1.25, -2.0, 3.75]
        for v in values:
            plain[3] += v
            old = atomic_add_double_cas(cas, 3, v)
        assert np.isclose(cas[3], plain[3])
        # atomicAdd returns the pre-addition value
        assert np.isclose(old, sum(values[:-1]))

    def test_cas_requires_float64(self):
        with pytest.raises(ValueError):
            atomic_add_double_cas(np.zeros(4, dtype=np.float32), 0, 1.0)

    def test_cas_index_bounds(self):
        with pytest.raises(IndexError):
            atomic_add_double_cas(np.zeros(4), 9, 1.0)

    def test_scatter_add_into_cube(self):
        cube = np.zeros((2, 3, 4))
        scatter_add(cube, [0, 0, 23], [1.0, 2.0, 5.0])
        assert cube[0, 0, 0] == 3.0
        assert cube[1, 2, 3] == 5.0


class TestPerformanceModel:
    def test_transfer_time_increases_with_bytes(self):
        model = PerformanceModel()
        assert model.transfer_time(2e9) > model.transfer_time(1e9)

    def test_transfer_latency_per_transfer(self):
        model = PerformanceModel(pcie_latency=1e-3)
        one = model.transfer_time(1e6, n_transfers=1)
        many = model.transfer_time(1e6, n_transfers=10)
        assert np.isclose(many - one, 9e-3)

    def test_kernel_time_roofline(self):
        model = PerformanceModel(peak_flops=1e9, memory_bandwidth=1e12)
        compute_bound = model.kernel_time(1_000_000, flops_per_thread=1000, bytes_per_thread=1)
        assert compute_bound >= 1.0  # 1e9 flops on 1e9 flops/s

    def test_kernel_memory_bound(self):
        model = PerformanceModel(peak_flops=1e15, memory_bandwidth=1e9)
        t = model.kernel_time(1_000_000, flops_per_thread=1, bytes_per_thread=1000)
        assert t >= 1.0

    def test_total_time_components(self):
        model = PerformanceModel()
        total = model.total_time(1e6, 1e5, 1000, 100, 50, n_launches=2)
        assert total > 0

    def test_invalid_arguments(self):
        model = PerformanceModel()
        with pytest.raises(ValueError):
            model.transfer_time(-1)
        with pytest.raises(ValueError):
            model.kernel_time(-1, 1, 1)
        with pytest.raises(ValueError):
            model.total_time(1, 1, 1, 1, 1, n_launches=0)

    def test_host_model_scaling(self):
        host = HostPerformanceModel(time_per_element=1e-6)
        assert np.isclose(host.total_time(1_000_000), 1.0)

    def test_host_model_multicore(self):
        serial = HostPerformanceModel(time_per_element=1e-6, cores=1)
        parallel = HostPerformanceModel(time_per_element=1e-6, cores=4)
        assert parallel.total_time(10**6) < serial.total_time(10**6)

    def test_host_model_validation(self):
        with pytest.raises(ValueError):
            HostPerformanceModel(cores=0)
        with pytest.raises(ValueError):
            HostPerformanceModel(parallel_efficiency=1.5)


class TestStreamAndProfiler:
    def test_event_elapsed_time_milliseconds(self):
        device = Device(GENERIC_LAPTOP_GPU)
        start = Event("start").record(device)
        device.advance_clock(0.5, label="work", kind="kernel")
        stop = Event("stop").record(device)
        assert np.isclose(start.elapsed_time(stop), 500.0)

    def test_event_unrecorded_raises(self):
        with pytest.raises(RuntimeError):
            Event().elapsed_time(Event())

    def test_stream_records_events_in_order(self):
        device = Device(GENERIC_LAPTOP_GPU)
        stream = Stream(device=device)
        stream.record_event("a")
        device.advance_clock(0.1, label="x", kind="kernel")
        stream.record_event("b")
        events = stream.events
        assert [e.name for e in events] == ["a", "b"]
        assert events[1].timestamp > events[0].timestamp

    def test_stream_synchronize_returns_clock(self):
        device = Device(GENERIC_LAPTOP_GPU)
        device.advance_clock(0.2, label="x", kind="kernel")
        assert Stream(device=device).synchronize() == device.simulated_time

    def test_profiler_aggregation(self):
        profiler = Profiler()
        profiler.record("kernel", "k1", 0.0, 1.0)
        profiler.record("kernel", "k2", 1.0, 2.0)
        profiler.record("memcpy_h2d", "t", 3.0, 0.5)
        assert profiler.total_time() == 3.5
        assert profiler.total_time("kernel") == 3.0
        assert profiler.time_by_kind()["memcpy_h2d"] == 0.5
        assert profiler.count_by_kind()["kernel"] == 2

    def test_profiler_transfer_fraction(self):
        profiler = Profiler()
        profiler.record("kernel", "k", 0.0, 3.0)
        profiler.record("memcpy_h2d", "t", 3.0, 1.0)
        assert np.isclose(profiler.transfer_fraction(), 0.25)

    def test_profiler_empty_transfer_fraction(self):
        assert Profiler().transfer_fraction() == 0.0

    def test_profiler_summary_mentions_kinds(self):
        profiler = Profiler()
        profiler.record("kernel", "k", 0.0, 1.0)
        assert "kernel" in profiler.summary()

    def test_record_end_property(self):
        profiler = Profiler()
        rec = profiler.record("kernel", "k", 1.5, 0.25)
        assert np.isclose(rec.end, 1.75)

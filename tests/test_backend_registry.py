"""Tests for the pluggable backend registry and config round-tripping.

Covers the registry mechanics (registration, unregistration, duplicate-name
rejection, did-you-mean suggestions), ``ReconstructionConfig`` fail-fast
validation and ``to_dict``/``from_dict``, and the acceptance scenario: a toy
out-of-tree backend registered via ``@register_backend`` running end-to-end
through the session, the registry CLI and ``Session.compare``.
"""

import json

import numpy as np
import pytest

from repro.core.backends.base import Backend
from repro.core.backends.vectorized import VectorizedExecutor
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.registry import (
    BackendInfo,
    available_backends,
    backend_info,
    backends,
    get_backend,
    register_backend,
    register_backend_info,
    unregister_backend,
)
from repro.core.session import session
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError
from tests.helpers import make_tiny_stack

ALL_BACKENDS = ("cpu_reference", "vectorized", "gpusim", "multiprocess")


class _ToyExecutor(VectorizedExecutor):
    """The vectorised compute under an out-of-tree name."""

    name = "toy"


@pytest.fixture()
def toy_backend():
    """Register a toy out-of-tree backend for the duration of one test."""

    @register_backend("toy", supports_streaming=True, needs_workers=False,
                      description="out-of-tree test backend")
    class ToyBackend(Backend):
        def make_executor(self, config):
            return _ToyExecutor()

    try:
        yield ToyBackend
    finally:
        unregister_backend("toy")


class TestRegistry:
    def test_builtins_registered_with_capabilities(self):
        names = available_backends()
        for name in ALL_BACKENDS:
            assert name in names
            info = backend_info(name)
            assert info.supports_streaming is True
            assert info.module.startswith("repro.core.backends.")
            assert info.description
        assert backend_info("multiprocess").needs_workers is True
        assert backend_info("vectorized").needs_workers is False

    def test_backends_listing_sorted(self):
        infos = backends()
        assert [info.name for info in infos] == sorted(info.name for info in infos)
        assert {info.name for info in infos} >= set(ALL_BACKENDS)

    def test_backends_single_lookup(self):
        info = backends("gpusim")
        assert isinstance(info, BackendInfo)
        assert info.name == "gpusim"

    def test_unknown_backend_rejected_with_suggestion(self):
        with pytest.raises(ValidationError, match="did you mean 'vectorized'"):
            get_backend("vectorised")

    def test_unknown_backend_without_close_match(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            get_backend("zzzz-not-a-backend")

    def test_register_and_unregister(self, toy_backend):
        assert "toy" in available_backends()
        assert isinstance(get_backend("toy"), toy_backend)
        info = unregister_backend("toy")
        assert info.name == "toy"
        assert "toy" not in available_backends()
        register_backend_info(info)  # restore for the fixture teardown

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValidationError, match="cannot unregister"):
            unregister_backend("never-registered")

    def test_duplicate_name_rejected(self, toy_backend):
        with pytest.raises(ValidationError, match="already registered"):
            @register_backend("toy")
            class Duplicate(Backend):
                def make_executor(self, config):  # pragma: no cover - never built
                    raise NotImplementedError

    def test_duplicate_name_allowed_with_replace(self, toy_backend):
        original = backend_info("toy")

        @register_backend("toy", replace=True, description="replacement")
        class Replacement(Backend):
            def make_executor(self, config):
                return _ToyExecutor()

        assert backend_info("toy").description == "replacement"
        register_backend_info(original, replace=True)

    def test_register_requires_name(self):
        with pytest.raises(ValidationError):
            @register_backend
            class Nameless(Backend):  # pragma: no cover - definition only
                name = ""

                def make_executor(self, config):
                    raise NotImplementedError

    def test_register_rejects_conflicting_names(self):
        with pytest.raises(ValidationError, match="declares name"):
            @register_backend("one-name")
            class Conflicted(Backend):  # pragma: no cover - definition only
                name = "another-name"

                def make_executor(self, config):
                    raise NotImplementedError

    def test_info_to_dict_json_safe(self):
        payload = json.dumps([info.to_dict() for info in backends()])
        decoded = json.loads(payload)
        assert {entry["name"] for entry in decoded} >= set(ALL_BACKENDS)


class TestConfigRegistryValidation:
    def test_typo_fails_fast_at_construction(self, depth_grid):
        with pytest.raises(ValidationError, match="did you mean 'gpusim'"):
            ReconstructionConfig(grid=depth_grid, backend="gpusym")

    def test_with_backend_validates(self, depth_grid):
        config = ReconstructionConfig(grid=depth_grid)
        with pytest.raises(ValidationError, match="unknown backend"):
            config.with_backend("quantum")

    def test_streaming_capability_enforced(self, depth_grid):
        @register_backend("no-stream", supports_streaming=False)
        class NoStream(Backend):
            def make_executor(self, config):  # pragma: no cover - never built
                raise NotImplementedError

        try:
            ReconstructionConfig(grid=depth_grid, backend="no-stream")  # fine
            with pytest.raises(ValidationError, match="does not support streaming"):
                ReconstructionConfig(grid=depth_grid, backend="no-stream", streaming=True)
        finally:
            unregister_backend("no-stream")


class TestConfigRoundTrip:
    def test_round_trip_all_fields(self):
        config = ReconstructionConfig(
            grid=DepthGrid(start=-5.0, step=2.5, n_bins=17),
            wire_edge=WireEdge.TRAILING,
            difference_mode=DifferenceMode.RECTIFIED,
            intensity_cutoff=0.75,
            backend="multiprocess",
            layout="pointer3d",
            rows_per_chunk=3,
            device_memory_limit=1 << 20,
            n_workers=5,
            subtract_background=True,
            streaming=True,
        )
        data = config.to_dict()
        assert json.loads(json.dumps(data)) == data  # JSON-safe snapshot
        restored = ReconstructionConfig.from_dict(data)
        assert restored == config

    def test_round_trip_defaults(self, depth_grid):
        config = ReconstructionConfig(grid=depth_grid)
        assert ReconstructionConfig.from_dict(config.to_dict()) == config

    def test_from_dict_accepts_enum_instances(self, depth_grid):
        data = ReconstructionConfig(grid=depth_grid).to_dict()
        data["wire_edge"] = WireEdge.LEADING
        data["difference_mode"] = DifferenceMode.SIGNED
        data["grid"] = depth_grid
        assert ReconstructionConfig.from_dict(data).grid == depth_grid

    def test_from_dict_rejects_unknown_fields(self, depth_grid):
        data = ReconstructionConfig(grid=depth_grid).to_dict()
        data["gpu_count"] = 8
        with pytest.raises(ValidationError, match="unknown config field"):
            ReconstructionConfig.from_dict(data)

    def test_from_dict_rejects_bad_enum_strings(self, depth_grid):
        data = ReconstructionConfig(grid=depth_grid).to_dict()
        data["wire_edge"] = "sideways"
        with pytest.raises(ValidationError, match="unknown wire_edge"):
            ReconstructionConfig.from_dict(data)
        data = ReconstructionConfig(grid=depth_grid).to_dict()
        data["difference_mode"] = "absolute"
        with pytest.raises(ValidationError, match="unknown difference_mode"):
            ReconstructionConfig.from_dict(data)

    def test_from_dict_requires_grid(self):
        with pytest.raises(ValidationError, match="grid"):
            ReconstructionConfig.from_dict({"backend": "vectorized"})

    def test_from_dict_validates_backend_via_registry(self, depth_grid):
        data = ReconstructionConfig(grid=depth_grid).to_dict()
        data["backend"] = "vectorised"
        with pytest.raises(ValidationError, match="did you mean"):
            ReconstructionConfig.from_dict(data)


class TestToyBackendEndToEnd:
    """Acceptance: an out-of-tree backend is a first-class citizen."""

    def test_runs_through_session(self, toy_backend, depth_grid):
        stack = make_tiny_stack(n_rows=4, n_cols=3, n_positions=11)
        run = session(grid=depth_grid).on("toy").run(stack)
        reference = session(grid=depth_grid).on("vectorized").run(stack)
        np.testing.assert_array_equal(run.result.data, reference.result.data)
        assert run.report.backend == "toy"
        assert json.loads(run.to_json())["backend"] == "toy"

    def test_visible_in_registry_cli(self, toy_backend, capsys):
        from repro.cli import main_backends

        assert main_backends([]) == 0
        table = capsys.readouterr().out
        assert "toy" in table and "out-of-tree test backend" in table
        assert main_backends(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = [item for item in payload if item["name"] == "toy"]
        assert entry["supports_streaming"] is True
        assert entry["module"] == __name__

    def test_compare_backends_includes_toy(self, toy_backend, depth_grid):
        stack = make_tiny_stack(n_rows=4, n_cols=3, n_positions=11)
        runs = session(grid=depth_grid).compare(stack, ["vectorized", "toy"])
        assert set(runs) == {"vectorized", "toy"}
        np.testing.assert_array_equal(
            runs["toy"].result.data, runs["vectorized"].result.data
        )

    def test_streamed_toy_run_matches_in_memory(self, toy_backend, depth_grid, tmp_path):
        from repro.io.image_stack import save_wire_scan

        stack = make_tiny_stack(n_rows=5, n_cols=3, n_positions=11)
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, stack)
        sess = session(grid=depth_grid).on("toy")
        in_memory = sess.run(str(path))
        streamed = sess.stream(rows_per_chunk=2).run(str(path))
        np.testing.assert_array_equal(streamed.result.data, in_memory.result.data)
        assert any("streamed from disk" in note for note in streamed.report.notes)

"""Unit tests for repro.geometry.beam and repro.geometry.detector."""

import numpy as np
import pytest

from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.rotations import rotation_about_axis
from repro.utils.validation import ValidationError


class TestBeam:
    def test_default_is_canonical(self):
        assert Beam().is_canonical()

    def test_point_at_depth_scalar(self):
        p = Beam().point_at_depth(12.0)
        np.testing.assert_allclose(p, [0.0, 0.0, 12.0])

    def test_point_at_depth_array(self):
        pts = Beam().point_at_depth([1.0, 2.0, 3.0])
        assert pts.shape == (3, 3)
        np.testing.assert_allclose(pts[:, 2], [1.0, 2.0, 3.0])

    def test_depth_of_point_inverts_point_at_depth(self):
        beam = Beam(direction=(0.0, 0.6, 0.8), origin=(1.0, 2.0, 3.0))
        depth = 17.0
        point = beam.point_at_depth(depth)
        assert np.isclose(beam.depth_of_point(point), depth)

    def test_non_canonical_detection(self):
        assert not Beam(direction=(0.0, 1.0, 0.0)).is_canonical()
        assert not Beam(origin=(0.0, 0.0, 5.0)).is_canonical()

    def test_direction_normalised(self):
        beam = Beam(direction=(0.0, 0.0, 10.0))
        np.testing.assert_allclose(beam.unit_direction, [0, 0, 1])

    def test_zero_direction_rejected(self):
        with pytest.raises(ValidationError):
            Beam(direction=(0.0, 0.0, 0.0))

    def test_bad_energy_band_rejected(self):
        with pytest.raises(ValidationError):
            Beam(energy_min_kev=20.0, energy_max_kev=10.0)


class TestDetector:
    def test_shape_and_pixel_count(self):
        det = Detector(n_rows=4, n_cols=6)
        assert det.shape == (4, 6)
        assert det.n_pixels == 24

    def test_pixel_positions_full_grid_shape(self):
        det = Detector(n_rows=3, n_cols=5)
        pts = det.pixel_positions()
        assert pts.shape == (3, 5, 3)

    def test_pixel_positions_center_symmetry(self):
        det = Detector(n_rows=5, n_cols=5, pixel_size=100.0, center=(0.0, 0.0))
        pts = det.pixel_positions()
        # centre pixel sits exactly above the origin at the detector distance
        np.testing.assert_allclose(pts[2, 2], [0.0, det.distance, 0.0], atol=1e-9)

    def test_pixel_pitch_spacing(self):
        det = Detector(n_rows=4, n_cols=4, pixel_size=150.0)
        pts = det.pixel_positions()
        np.testing.assert_allclose(pts[0, 1, 0] - pts[0, 0, 0], 150.0)
        np.testing.assert_allclose(pts[1, 0, 2] - pts[0, 0, 2], 150.0)

    def test_row_yz_matches_pixel_positions(self):
        det = Detector(n_rows=6, n_cols=3)
        rows_yz = det.row_yz()
        pts = det.pixel_positions()
        np.testing.assert_allclose(rows_yz[:, 0], pts[:, 0, 1])
        np.testing.assert_allclose(rows_yz[:, 1], pts[:, 0, 2])

    def test_row_edges_straddle_center(self):
        det = Detector(n_rows=4, n_cols=4, pixel_size=200.0)
        back, front = det.row_edges_yz()
        centres = det.row_yz()
        np.testing.assert_allclose(front[:, 1] - centres[:, 1], 100.0)
        np.testing.assert_allclose(centres[:, 1] - back[:, 1], 100.0)

    def test_row_index_out_of_range(self):
        det = Detector(n_rows=4, n_cols=4)
        with pytest.raises(ValidationError):
            det.row_yz([5])

    def test_pixel_position_single(self):
        det = Detector(n_rows=3, n_cols=3)
        p = det.pixel_position(1, 1)
        assert p.shape == (3,)

    def test_tilted_detector_not_canonical(self):
        tilt = rotation_about_axis((1, 0, 0), 0.1)
        det = Detector(n_rows=3, n_cols=3, tilt=tilt)
        assert not det.is_canonical
        with pytest.raises(ValidationError):
            det.row_yz()

    def test_tilted_detector_positions_rotate_about_center(self):
        tilt = rotation_about_axis((1, 0, 0), 0.2)
        det_flat = Detector(n_rows=5, n_cols=5)
        det_tilt = Detector(n_rows=5, n_cols=5, tilt=tilt)
        # the central pixel is on the rotation centre and must not move
        np.testing.assert_allclose(
            det_tilt.pixel_position(2, 2), det_flat.pixel_position(2, 2), atol=1e-9
        )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            Detector(n_rows=0, n_cols=5)
        with pytest.raises(ValidationError):
            Detector(n_rows=5, n_cols=5, pixel_size=-1.0)

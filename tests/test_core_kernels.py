"""Unit tests for the reconstruction kernel bodies."""

import numpy as np
import pytest

from repro.core.backends.base import build_kernel_context
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.kernels import (
    depth_resolve_chunk_scalar,
    depth_resolve_chunk_vectorized,
    depth_resolve_element,
    make_set_two_kernel,
    set_two_vectorized,
)
from repro.cudasim.kernel import LaunchConfig
from repro.geometry.wire import WireEdge


@pytest.fixture()
def context_and_grid(point_source_stack, depth_grid):
    stack, _source = point_source_stack
    config = ReconstructionConfig(grid=depth_grid)
    return build_kernel_context(stack, config), depth_grid


class TestKernelContext:
    def test_dimensions(self, context_and_grid):
        ctx, _ = context_and_grid
        assert ctx.n_positions == ctx.images.shape[0]
        assert ctx.n_steps == ctx.n_positions - 1
        assert ctx.back_edge_yz.shape == (ctx.n_rows, 2)

    def test_signed_difference_scalar_matches_array(self, context_and_grid):
        ctx, _ = context_and_grid
        diffs = ctx.signed_differences()
        assert np.isclose(ctx.signed_difference(3, 2, 1), diffs[3, 2, 1])

    def test_trailing_edge_flips_sign(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        leading = build_kernel_context(stack, ReconstructionConfig(grid=depth_grid, wire_edge=WireEdge.LEADING))
        trailing = build_kernel_context(stack, ReconstructionConfig(grid=depth_grid, wire_edge=WireEdge.TRAILING))
        np.testing.assert_allclose(leading.signed_differences(), -trailing.signed_differences())

    def test_rectified_mode_clamps(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        config = ReconstructionConfig(grid=depth_grid, difference_mode=DifferenceMode.RECTIFIED)
        ctx = build_kernel_context(stack, config)
        assert np.all(ctx.signed_differences() >= 0)


class TestScalarVsVectorized:
    def test_chunk_scalar_equals_vectorized(self, context_and_grid):
        ctx, grid = context_and_grid
        out_scalar = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        out_vector = np.zeros_like(out_scalar)
        total_scalar = depth_resolve_chunk_scalar(ctx, out_scalar)
        total_vector = depth_resolve_chunk_vectorized(ctx, out_vector)
        np.testing.assert_allclose(out_vector, out_scalar, rtol=1e-9, atol=1e-12)
        assert np.isclose(total_scalar, total_vector, rtol=1e-9)

    def test_set_two_vectorized_equals_chunk(self, context_and_grid):
        ctx, grid = context_and_grid
        out_chunk = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        depth_resolve_chunk_vectorized(ctx, out_chunk)

        out_threads = np.zeros_like(out_chunk)
        cfg = LaunchConfig.for_volume((ctx.n_cols, ctx.n_rows, ctx.n_steps), block_dim=(4, 2, 4))
        ix, iy, iz = cfg.thread_indices()
        set_two_vectorized(ix, iy, iz, ctx, out_threads)
        np.testing.assert_allclose(out_threads, out_chunk, rtol=1e-9, atol=1e-12)

    def test_small_batches_do_not_change_result(self, context_and_grid):
        ctx, grid = context_and_grid
        big = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        small = np.zeros_like(big)
        depth_resolve_chunk_vectorized(ctx, big, element_batch=1 << 20)
        depth_resolve_chunk_vectorized(ctx, small, element_batch=7)
        np.testing.assert_allclose(small, big, rtol=1e-12, atol=1e-14)


class TestElementBehaviour:
    def test_masked_pixel_contributes_nothing(self, context_and_grid):
        ctx, grid = context_and_grid
        ctx.mask = np.zeros((ctx.n_rows, ctx.n_cols), dtype=bool)
        out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        assert depth_resolve_chunk_vectorized(ctx, out) == 0.0
        assert out.sum() == 0.0

    def test_cutoff_removes_small_differences(self, context_and_grid):
        ctx, grid = context_and_grid
        ctx.intensity_cutoff = 1e12  # absurdly high
        out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        assert depth_resolve_chunk_vectorized(ctx, out) == 0.0

    def test_single_element_deposit_is_conserving(self, context_and_grid):
        ctx, grid = context_and_grid
        diffs = ctx.signed_differences()
        step, row, col = np.unravel_index(np.argmax(np.abs(diffs)), diffs.shape)
        out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        deposited = depth_resolve_element(ctx, int(col), int(row), int(step), out)
        assert np.isclose(out.sum(), deposited)
        assert abs(deposited) <= abs(diffs[step, row, col]) + 1e-9

    def test_total_deposit_bounded_by_total_signal(self, context_and_grid):
        ctx, grid = context_and_grid
        out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        total = depth_resolve_chunk_vectorized(ctx, out)
        assert total <= np.abs(ctx.signed_differences()).sum() + 1e-9

    def test_deposits_land_in_correct_pixel_column(self, context_and_grid):
        # each (row, col) element only ever writes to its own (row, col)
        ctx, grid = context_and_grid
        out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols))
        mask = np.zeros((ctx.n_rows, ctx.n_cols), dtype=bool)
        mask[2, 3] = True
        ctx.mask = mask
        depth_resolve_chunk_vectorized(ctx, out)
        others = out.copy()
        others[:, 2, 3] = 0.0
        assert others.sum() == 0.0
        assert out[:, 2, 3].sum() > 0.0


class TestKernelFactory:
    def test_make_set_two_kernel_has_both_bodies(self):
        kernel = make_set_two_kernel()
        assert kernel.per_thread is not None
        assert kernel.vectorized is not None
        assert kernel.name == "setTwo"

    def test_extra_flops_added(self):
        base = make_set_two_kernel()
        extra = make_set_two_kernel(extra_flops_per_thread=10.0)
        assert extra.flops_per_thread == base.flops_per_thread + 10.0

"""Unit tests for repro.geometry.vectors and repro.geometry.rotations."""

import numpy as np
import pytest

from repro.geometry.rotations import (
    is_rotation_matrix,
    matrix_to_quaternion,
    misorientation_angle,
    quaternion_to_matrix,
    random_rotation,
    rotation_about_axis,
    rotation_from_euler,
)
from repro.geometry.vectors import (
    angle_between,
    normalize,
    perpendicular_distance_2d,
    project_point_on_segment_2d,
)
from repro.utils.validation import ValidationError


class TestVectors:
    def test_normalize_unit_length(self):
        v = normalize([3.0, 4.0, 0.0])
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])

    def test_angle_between_orthogonal(self):
        assert np.isclose(angle_between([1, 0, 0], [0, 1, 0]), np.pi / 2)

    def test_angle_between_antiparallel(self):
        assert np.isclose(angle_between([1, 0, 0], [-1, 0, 0]), np.pi)

    def test_perpendicular_distance_simple(self):
        # line along z at y=0; point at y=3
        dist = perpendicular_distance_2d(3.0, 5.0, 0.0, 0.0, 0.0, 10.0)
        assert np.isclose(dist, 3.0)

    def test_perpendicular_distance_point_on_line(self):
        assert np.isclose(perpendicular_distance_2d(0.0, 4.0, 0.0, 0.0, 0.0, 10.0), 0.0)

    def test_perpendicular_distance_degenerate_segment(self):
        dist = perpendicular_distance_2d(3.0, 4.0, 0.0, 0.0, 0.0, 0.0)
        assert np.isclose(dist, 5.0)

    def test_projection_parameter(self):
        t = project_point_on_segment_2d(0.0, 5.0, 0.0, 0.0, 0.0, 10.0)
        assert np.isclose(t, 0.5)

    def test_projection_outside_segment(self):
        t = project_point_on_segment_2d(0.0, 15.0, 0.0, 0.0, 0.0, 10.0)
        assert t > 1.0


class TestRotations:
    def test_rotation_about_z_90_degrees(self):
        rot = rotation_about_axis((0, 0, 1), np.pi / 2)
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_rotation_matrix_is_proper(self):
        rot = rotation_about_axis((1, 2, 3), 0.7)
        assert is_rotation_matrix(rot)

    def test_rotation_zero_axis_raises(self):
        with pytest.raises(ValidationError):
            rotation_about_axis((0, 0, 0), 0.5)

    def test_euler_identity(self):
        np.testing.assert_allclose(rotation_from_euler(0, 0, 0), np.eye(3), atol=1e-15)

    def test_random_rotation_is_proper(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert is_rotation_matrix(random_rotation(rng))

    def test_quaternion_roundtrip(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            rot = random_rotation(rng)
            q = matrix_to_quaternion(rot)
            np.testing.assert_allclose(quaternion_to_matrix(q), rot, atol=1e-10)

    def test_quaternion_identity(self):
        np.testing.assert_allclose(quaternion_to_matrix([0, 0, 0, 1]), np.eye(3), atol=1e-15)

    def test_quaternion_bad_shape(self):
        with pytest.raises(ValidationError):
            quaternion_to_matrix([1, 0, 0])

    def test_misorientation_self_is_zero(self):
        rot = rotation_about_axis((0, 1, 0), 0.3)
        assert np.isclose(misorientation_angle(rot, rot), 0.0, atol=1e-7)

    def test_misorientation_known_angle(self):
        a = np.eye(3)
        b = rotation_about_axis((0, 0, 1), 0.25)
        assert np.isclose(misorientation_angle(a, b), 0.25, atol=1e-10)

    def test_is_rotation_matrix_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        assert not is_rotation_matrix(reflection)

    def test_is_rotation_matrix_rejects_wrong_shape(self):
        assert not is_rotation_matrix(np.eye(2))

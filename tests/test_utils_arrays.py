"""Unit tests for repro.utils.arrays and repro.utils.logging."""

import logging

import numpy as np
import pytest

from repro.utils.arrays import (
    as_contiguous,
    as_float64,
    bytes_to_human,
    chunk_ranges,
    ravel_index_3d,
    unravel_index_3d,
)
from repro.utils.logging import configure, get_logger


class TestIndexMapping:
    def test_matches_paper_formula(self):
        # gsl_offset = idx + idy*DATAXSIZE + DATAYSIZE*DATAXSIZE*idz
        nx, ny = 9, 2
        assert ravel_index_3d(3, 1, 2, nx, ny) == 3 + 1 * 9 + 2 * 18

    def test_roundtrip_scalar(self):
        nx, ny = 7, 5
        offset = ravel_index_3d(4, 3, 2, nx, ny)
        ix, iy, iz = unravel_index_3d(offset, nx, ny)
        assert (ix, iy, iz) == (4, 3, 2)

    def test_roundtrip_arrays(self):
        nx, ny, nz = 6, 4, 3
        ix, iy, iz = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
        offsets = ravel_index_3d(ix, iy, iz, nx, ny)
        rx, ry, rz = unravel_index_3d(offsets, nx, ny)
        np.testing.assert_array_equal(rx, ix)
        np.testing.assert_array_equal(ry, iy)
        np.testing.assert_array_equal(rz, iz)

    def test_offsets_are_unique_and_dense(self):
        nx, ny, nz = 5, 4, 3
        ix, iy, iz = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
        offsets = np.sort(ravel_index_3d(ix, iy, iz, nx, ny).ravel())
        np.testing.assert_array_equal(offsets, np.arange(nx * ny * nz))


class TestChunkRanges:
    def test_exact_division(self):
        assert list(chunk_ranges(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder(self):
        assert list(chunk_ranges(7, 3)) == [(0, 3), (3, 6), (6, 7)]

    def test_single_chunk(self):
        assert list(chunk_ranges(3, 10)) == [(0, 3)]

    def test_zero_total(self):
        assert list(chunk_ranges(0, 4)) == []

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_ranges(5, 0))

    def test_covers_everything_without_overlap(self):
        covered = []
        for start, stop in chunk_ranges(23, 5):
            covered.extend(range(start, stop))
        assert covered == list(range(23))


class TestConversions:
    def test_as_float64_casts(self):
        out = as_float64(np.arange(3, dtype=np.int32))
        assert out.dtype == np.float64

    def test_as_contiguous_on_strided(self):
        arr = np.zeros((4, 4))[::2]
        out = as_contiguous(arr)
        assert out.flags["C_CONTIGUOUS"]

    def test_bytes_to_human_gb(self):
        assert bytes_to_human(2.1 * 1024**3).endswith("GB")

    def test_bytes_to_human_small(self):
        assert bytes_to_human(12) == "12 B"


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("core.reconstruction")
        assert logger.name == "repro.core.reconstruction"

    def test_get_logger_idempotent_prefix(self):
        assert get_logger("repro.io").name == "repro.io"

    def test_configure_adds_single_handler(self):
        root = configure(level=logging.DEBUG)
        configure(level=logging.DEBUG)
        assert len(root.handlers) == 1

"""Tests for the command-line entry points."""

import json

import numpy as np
import pytest

from repro.cli import (
    main_analyze,
    main_backends,
    main_batch,
    main_bench,
    main_benchmark,
    main_cache,
    main_generate,
    main_reconstruct,
)
from repro.io.image_stack import load_depth_resolved, load_wire_scan


class TestGenerate:
    def test_generate_grain_file(self, tmp_path, capsys):
        out = tmp_path / "grains.h5lite"
        code = main_generate([str(out), "--kind", "grains", "--rows", "16", "--cols", "16",
                              "--positions", "41", "--grains", "2", "--seed", "3"])
        assert code == 0
        assert out.exists()
        stack = load_wire_scan(out)
        assert stack.shape == (41, 16, 16)
        assert "grain boundaries" in capsys.readouterr().out

    def test_generate_benchmark_file(self, tmp_path, capsys):
        out = tmp_path / "bench.h5lite"
        code = main_generate([str(out), "--kind", "benchmark", "--size-label", "0.1MB",
                              "--pixel-fraction", "0.5"])
        assert code == 0
        stack = load_wire_scan(out)
        assert stack.pixel_mask is not None
        assert "pixel fraction 50%" in capsys.readouterr().out


class TestReconstruct:
    def test_end_to_end_cli(self, tmp_path, capsys):
        scan_path = tmp_path / "scan.h5lite"
        main_generate([str(scan_path), "--kind", "benchmark", "--size-label", "0.05MB"])
        out_path = tmp_path / "depth.h5lite"
        text_path = tmp_path / "profiles.txt"
        code = main_reconstruct([
            str(scan_path), "-o", str(out_path), "--text", str(text_path),
            "--depth-bins", "30", "--backend", "gpusim", "--layout", "flat1d",
        ])
        assert code == 0
        assert out_path.exists() and text_path.exists()
        result = load_depth_resolved(out_path)
        assert result.grid.n_bins == 30
        assert result.total_intensity() > 0
        output = capsys.readouterr().out
        assert "backend=gpusim" in output
        assert "peaks at" in output

    def test_cli_backend_choices_enforced(self, tmp_path):
        with pytest.raises(SystemExit):
            main_reconstruct([str(tmp_path / "x.h5lite"), "--backend", "quantum"])

    def test_provenance_record_written(self, tmp_path, capsys):
        scan_path = tmp_path / "scan.h5lite"
        main_generate([str(scan_path), "--kind", "benchmark", "--size-label", "0.05MB"])
        record_path = tmp_path / "run.json"
        code = main_reconstruct([
            str(scan_path), "--backend", "gpusim", "--depth-bins", "20",
            "--provenance", str(record_path),
        ])
        assert code == 0
        record = json.loads(record_path.read_text())
        assert record["backend"] == "gpusim"
        assert record["config"]["grid"]["n_bins"] == 20
        assert record["source"]["path"] == str(scan_path)
        assert record["plan"].startswith("plan[")
        assert "wrote provenance record" in capsys.readouterr().out

    def test_streaming_flag_matches_in_memory(self, tmp_path, capsys):
        scan_path = tmp_path / "scan.h5lite"
        main_generate([str(scan_path), "--kind", "benchmark", "--size-label", "0.05MB"])
        mem_path = tmp_path / "mem.h5lite"
        stream_path = tmp_path / "stream.h5lite"
        assert main_reconstruct([str(scan_path), "-o", str(mem_path)]) == 0
        assert main_reconstruct(
            [str(scan_path), "-o", str(stream_path), "--streaming", "--rows-per-chunk", "2"]
        ) == 0
        mem = load_depth_resolved(mem_path)
        streamed = load_depth_resolved(stream_path)
        np.testing.assert_array_equal(streamed.data, mem.data)


class TestBenchmarkCli:
    def test_fig8_report(self, capsys):
        code = main_benchmark(["fig8", "--scale", str(1.0 / 131072.0)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        for label in ("2.1G", "2.7G", "3.6G", "5.2G"):
            assert label in out
        assert "cpu_reference" in out and "gpusim" in out

    def test_fig4_report(self, capsys):
        code = main_benchmark(["fig4", "--scale", str(1.0 / 131072.0)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "flat1d" in out and "pointer3d" in out
        assert "25%" in out and "100%" in out

    def test_headline_report(self, capsys):
        code = main_benchmark(["headline", "--scale", str(1.0 / 131072.0)])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU/CPU time ratio" in out


class TestBackendsCli:
    def test_table_lists_builtins_and_capabilities(self, capsys):
        assert main_backends([]) == 0
        out = capsys.readouterr().out
        for name in ("cpu_reference", "vectorized", "gpusim", "multiprocess"):
            assert name in out
        assert "streaming" in out and "workers" in out
        assert "4 backend(s) registered" in out or "backend(s) registered" in out

    def test_json_payload(self, capsys):
        assert main_backends(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["multiprocess"]["needs_workers"] is True
        assert by_name["gpusim"]["supports_streaming"] is True
        assert by_name["vectorized"]["module"] == "repro.core.backends.vectorized"


class TestBatchCli:
    def test_batch_reconstructs_many_files(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"scan_{index}.h5lite"
            main_generate([str(path), "--kind", "benchmark", "--size-label", "0.05MB",
                           "--seed", str(index)])
            paths.append(str(path))
        capsys.readouterr()
        out_dir = tmp_path / "depth"
        code = main_batch(paths + ["-d", str(out_dir), "-j", "3", "--depth-bins", "20",
                                   "--streaming"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3/3 ok" in out
        for index in range(3):
            result = load_depth_resolved(out_dir / f"scan_{index}_depth.h5lite")
            assert result.grid.n_bins == 20
            assert result.total_intensity() > 0

    def test_batch_reports_failures_and_exits_nonzero(self, tmp_path, capsys):
        good = tmp_path / "good.h5lite"
        main_generate([str(good), "--kind", "benchmark", "--size-label", "0.05MB"])
        bad = tmp_path / "bad.h5lite"
        bad.write_bytes(b"garbage")
        capsys.readouterr()
        code = main_batch([str(good), str(bad)])
        assert code == 1
        out = capsys.readouterr().out
        assert "1/2 ok" in out
        assert "FAIL" in out and "H5LiteError" in out


class TestAnalyzeCli:
    @pytest.fixture()
    def depth_file(self, tmp_path):
        scan_path = tmp_path / "scan.h5lite"
        main_generate([str(scan_path), "--kind", "benchmark", "--size-label", "0.05MB"])
        out_path = tmp_path / "depth.h5lite"
        main_reconstruct([str(scan_path), "-o", str(out_path), "--depth-bins", "25"])
        return out_path

    def test_list_ops(self, capsys):
        assert main_analyze(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("peaks", "fwhm", "grain_boundaries", "depth_resolution"):
            assert name in out
        assert "op(s) registered" in out

    def test_list_ops_json(self, capsys):
        assert main_analyze(["--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["peaks"]["parameters"]["min_relative_height"] == 0.1
        assert by_name["fwhm"]["module"] == "repro.core.ops"

    def test_analyze_matches_api_json(self, depth_file, capsys):
        import repro

        assert main_analyze([str(depth_file), "peaks", "fwhm"]) == 0
        cli_document = capsys.readouterr().out.rstrip("\n")
        api_document = repro.analysis("peaks", "fwhm").apply(str(depth_file)).to_json()
        assert cli_document == api_document
        payload = json.loads(cli_document)
        assert [record["op"] for record in payload["results"]] == ["peaks", "fwhm"]
        assert payload["provenance"]["run"]["backend"] == "vectorized"

    def test_analyze_parameterized_op(self, depth_file, capsys):
        assert main_analyze([str(depth_file), 'peaks:{"min_relative_height": 0.5}']) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["params"] == {"min_relative_height": 0.5}

    def test_analyze_writes_output_file(self, depth_file, tmp_path, capsys):
        out = tmp_path / "analysis.json"
        assert main_analyze([str(depth_file), "total_intensity", "-o", str(out)]) == 0
        assert "wrote analysis record" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["results"][0]["value"] > 0

    def test_analyze_requires_input_and_ops(self, depth_file):
        with pytest.raises(SystemExit):
            main_analyze([])
        with pytest.raises(SystemExit):
            main_analyze([str(depth_file)])

    def test_bad_json_params_rejected(self, depth_file):
        with pytest.raises(SystemExit, match="invalid JSON parameters"):
            main_analyze([str(depth_file), "peaks:{broken"])
        with pytest.raises(SystemExit, match="must be a JSON object"):
            main_analyze([str(depth_file), "peaks:[1]"])


class TestCache:
    def _generate(self, tmp_path):
        scan = tmp_path / "scan.h5lite"
        main_generate([str(scan), "--kind", "benchmark", "--size-label", "0.05MB"])
        return str(scan)

    def test_reconstruct_cache_flag_hits_on_second_run(self, tmp_path, capsys):
        scan = self._generate(tmp_path)
        root = str(tmp_path / "cache")
        assert main_reconstruct([scan, "--cache-root", root]) == 0
        assert "cache hit" not in capsys.readouterr().out
        assert main_reconstruct([scan, "--cache-root", root]) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_batch_cache_flag_marks_cached_items(self, tmp_path, capsys):
        scan = self._generate(tmp_path)
        root = str(tmp_path / "cache")
        assert main_batch([scan, "--cache-root", root]) == 0
        capsys.readouterr()
        assert main_batch([scan, "--cache-root", root]) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_stats_verify_prune_clear_round_trip(self, tmp_path, capsys):
        scan = self._generate(tmp_path)
        root = str(tmp_path / "cache")
        main_reconstruct([scan, "--cache-root", root])
        capsys.readouterr()

        assert main_cache(["--root", root, "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n_runs"] == 1 and stats["total_bytes"] > 0

        assert main_cache(["--root", root, "verify"]) == 0
        assert "repaired (deleted) 0" in capsys.readouterr().out

        assert main_cache(["--root", root, "prune", "--older-than", "30", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 0

        assert main_cache(["--root", root, "clear", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1

    def test_verify_reports_and_deletes_broken_entries(self, tmp_path, capsys):
        import glob
        import os

        scan = self._generate(tmp_path)
        root = str(tmp_path / "cache")
        main_reconstruct([scan, "--cache-root", root])
        entry = glob.glob(os.path.join(root, "runs", "*", "*.h5lite"))[0]
        with open(entry, "r+b") as fh:
            fh.write(b"garbage!")
        capsys.readouterr()
        assert main_cache(["--root", root, "verify"]) == 1  # non-zero: repairs made
        assert "repaired (deleted) 1" in capsys.readouterr().out
        assert not os.path.exists(entry)

    def test_prune_requires_a_bound(self, tmp_path):
        with pytest.raises(SystemExit):
            main_cache(["--root", str(tmp_path), "prune"])


class TestBench:
    def test_parallel_bench_writes_artifact(self, tmp_path, capsys):
        """repro-bench --suite dispatch on a tiny workload emits a BENCH_4 record."""
        out = tmp_path / "BENCH_smoke.json"
        code = main_bench([
            "--suite", "dispatch",
            "--size-label", "0.3MB", "--workers", "1,2",
            "--repeats", "1", "--files", "2", "-o", str(out),
        ])
        assert code == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "parallel_scaling"
        assert {row["n_workers"] for row in record["scaling"]} == {1, 2}
        assert all(row["shm_s"] > 0 and row["pickle_s"] > 0 for row in record["scaling"])
        reuse = record["pool_reuse"]
        assert reuse["n_files"] == 2 and reuse["pooled_pool_spawns"] == 1
        assert set(record["checks"]) == {
            "shm_beats_pickle_multiworker",
            "pooled_run_many_beats_cold_start",
        }
        output = capsys.readouterr().out
        assert "workers" in output and f"wrote {out}" in output

    def test_executor_bench_writes_artifact(self, tmp_path, capsys):
        """The default suite is the executor matrix emitting a BENCH_6 record."""
        out = tmp_path / "BENCH6_smoke.json"
        code = main_bench([
            "--size-label", "0.3MB", "--workers", "1,2",
            "--repeats", "1", "-o", str(out),
        ])
        assert code == 0
        record = json.loads(out.read_text())
        assert record["benchmark"] == "executor_scaling"
        cells = {(row["executor"], row["n_workers"]) for row in record["matrix"]}
        assert ("serial", 1) in cells and ("threads", 2) in cells
        assert record["kernel"]["fused"]["median_s"] > 0
        # the honesty pair: either the gate passed or the reason is recorded
        assert record["checks"]["two_x_at_4_workers"] or record["serial_fallback_reason"]
        output = capsys.readouterr().out
        assert "gate:" in output and f"wrote {out}" in output

    def test_bench_rejects_bad_workers(self, tmp_path):
        with pytest.raises(SystemExit):
            main_bench(["--workers", "two,4", "-o", str(tmp_path / "x.json")])

    def test_bench_all_rejects_single_output(self, tmp_path):
        with pytest.raises(SystemExit):
            main_bench(["--suite", "all", "-o", str(tmp_path / "x.json")])

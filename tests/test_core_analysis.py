"""Unit tests for post-reconstruction analysis helpers."""

import numpy as np
import pytest

from repro.core.analysis import (
    depth_resolution_estimate,
    detect_grain_boundaries,
    find_profile_peaks,
    profile_fwhm,
)
from repro.core.depth_grid import DepthGrid
from repro.core.session import session
from repro.core.result import DepthResolvedStack
from repro.utils.validation import ValidationError


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 50)


def gaussian_profile(grid, center, sigma, height=1.0):
    return height * np.exp(-0.5 * ((grid.centers - center) / sigma) ** 2)


class TestFindPeaks:
    def test_single_peak_found(self, grid):
        profile = gaussian_profile(grid, 40.0, 5.0)
        peaks = find_profile_peaks(profile, grid)
        assert len(peaks) == 1
        assert abs(peaks[0].depth - 40.0) <= grid.step

    def test_two_peaks_found_in_order(self, grid):
        profile = gaussian_profile(grid, 25.0, 4.0) + gaussian_profile(grid, 70.0, 4.0, height=0.8)
        peaks = find_profile_peaks(profile, grid)
        assert len(peaks) == 2
        assert peaks[0].depth < peaks[1].depth
        assert abs(peaks[0].depth - 25.0) <= grid.step
        assert abs(peaks[1].depth - 70.0) <= grid.step

    def test_small_peaks_filtered(self, grid):
        profile = gaussian_profile(grid, 40.0, 4.0) + gaussian_profile(grid, 80.0, 3.0, height=0.02)
        peaks = find_profile_peaks(profile, grid, min_relative_height=0.1)
        assert len(peaks) == 1

    def test_close_peaks_suppressed(self, grid):
        profile = gaussian_profile(grid, 40.0, 2.0) + gaussian_profile(grid, 43.0, 2.0, height=0.9)
        peaks = find_profile_peaks(profile, grid, min_separation_bins=5)
        assert len(peaks) == 1

    def test_empty_profile(self, grid):
        assert find_profile_peaks(np.zeros(grid.n_bins), grid) == []

    def test_shape_validated(self, grid):
        with pytest.raises(ValidationError):
            find_profile_peaks(np.zeros(10), grid)


class TestFwhm:
    def test_gaussian_fwhm(self, grid):
        sigma = 6.0
        profile = gaussian_profile(grid, 50.0, sigma)
        peak = int(np.argmax(profile))
        fwhm = profile_fwhm(profile, grid, peak)
        expected = 2.0 * np.sqrt(2.0 * np.log(2.0)) * sigma
        assert fwhm == pytest.approx(expected, rel=0.15)

    def test_fwhm_none_when_peak_at_edge(self, grid):
        profile = np.linspace(0.0, 1.0, grid.n_bins)  # monotonic, "peak" at the last bin
        assert profile_fwhm(profile, grid, grid.n_bins - 1) is None

    def test_index_validated(self, grid):
        with pytest.raises(ValidationError):
            profile_fwhm(np.zeros(grid.n_bins), grid, 200)


class TestGrainBoundariesAndResolution:
    def test_boundary_detected_for_step_profile(self, grid):
        data = np.zeros((grid.n_bins, 2, 2))
        step_bin = 25
        data[:step_bin] = 2.0
        data[step_bin:] = 0.5
        result = DepthResolvedStack(data=data, grid=grid)
        boundaries = detect_grain_boundaries(result)
        assert boundaries.size >= 1
        assert np.min(np.abs(boundaries - grid.index_to_depth(step_bin))) <= 4 * grid.step

    def test_no_boundaries_for_flat_profile(self, grid):
        result = DepthResolvedStack(data=np.ones((grid.n_bins, 2, 2)), grid=grid)
        boundaries = detect_grain_boundaries(result, min_relative_change=0.5)
        assert boundaries.size == 0

    def test_resolution_estimate_on_reconstruction(self, point_source_stack, grid):
        stack, _ = point_source_stack
        result = session(grid=grid).run(stack).result
        resolution = depth_resolution_estimate(result)
        # the point emitter should reconstruct to a narrow profile: a few bins
        assert grid.step <= resolution <= 12 * grid.step

    def test_resolution_requires_signal(self, grid):
        empty = DepthResolvedStack(data=np.zeros((grid.n_bins, 2, 2)), grid=grid)
        with pytest.raises(ValidationError):
            depth_resolution_estimate(empty)


class TestEdgeCases:
    """Degenerate inputs: flat/empty profiles, single-voxel grids, all-zero stacks."""

    def test_flat_profile_has_no_peaks(self, grid):
        assert find_profile_peaks(np.ones(grid.n_bins), grid) == []

    def test_negative_profile_has_no_peaks(self, grid):
        assert find_profile_peaks(-np.ones(grid.n_bins), grid) == []

    def test_single_voxel_grid_peaks(self):
        tiny = DepthGrid.from_range(0.0, 2.0, 1)
        assert find_profile_peaks(np.array([5.0]), tiny) == []

    def test_single_voxel_grid_fwhm_is_none(self):
        tiny = DepthGrid.from_range(0.0, 2.0, 1)
        assert profile_fwhm(np.array([5.0]), tiny, 0) is None

    def test_single_voxel_grid_boundaries_empty(self):
        tiny = DepthGrid.from_range(0.0, 2.0, 1)
        result = DepthResolvedStack(data=np.ones((1, 2, 2)), grid=tiny)
        assert detect_grain_boundaries(result).size == 0

    def test_two_bin_grid_boundaries_do_not_crash(self):
        grid2 = DepthGrid.from_range(0.0, 4.0, 2)
        result = DepthResolvedStack(data=np.ones((2, 2, 2)), grid=grid2)
        assert detect_grain_boundaries(result).size == 0

    def test_fwhm_zero_height_peak_is_none(self, grid):
        assert profile_fwhm(np.zeros(grid.n_bins), grid, grid.n_bins // 2) is None

    def test_all_zero_stack_boundaries_empty(self, grid):
        result = DepthResolvedStack(data=np.zeros((grid.n_bins, 3, 3)), grid=grid)
        assert detect_grain_boundaries(result).size == 0

    def test_single_pixel_stack_resolution(self, grid):
        data = np.zeros((grid.n_bins, 1, 1))
        data[:, 0, 0] = np.exp(-0.5 * ((grid.centers - 50.0) / 6.0) ** 2)
        result = DepthResolvedStack(data=data, grid=grid)
        resolution = depth_resolution_estimate(result)
        assert resolution > 0

    def test_min_signal_fraction_boundaries(self, grid):
        data = np.zeros((grid.n_bins, 1, 2))
        data[:, 0, 0] = gaussian_profile(grid, 40.0, 5.0, height=1.0)
        data[:, 0, 1] = gaussian_profile(grid, 60.0, 5.0, height=0.1)
        result = DepthResolvedStack(data=data, grid=grid)
        # 0.0 admits every pixel (all-zero pixels contribute no FWHM), 1.0
        # only the brightest; both are legal boundary values
        loose = depth_resolution_estimate(result, min_signal_fraction=0.0)
        tight = depth_resolution_estimate(result, min_signal_fraction=1.0)
        assert loose > 0 and tight > 0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, np.inf])
    def test_min_signal_fraction_validated(self, grid, bad):
        result = DepthResolvedStack(data=np.ones((grid.n_bins, 2, 2)), grid=grid)
        with pytest.raises(ValidationError, match="min_signal_fraction"):
            depth_resolution_estimate(result, min_signal_fraction=bad)

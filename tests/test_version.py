"""The package version must be single-sourced.

Cache keys (:mod:`repro.core.cache`), run/analysis provenance records and
``BENCH_*.json`` artifacts all stamp the package version; if two definitions
drifted apart, stale cache entries could silently be served as hits.  These
tests pin every consumer to the one definition in ``src/repro/_version.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import repro
from repro._version import __version__ as version_definition
from repro.utils.version import package_version

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_package_dunder_version_matches_definition():
    assert repro.__version__ == version_definition


def test_package_version_helper_matches_definition():
    assert package_version() == version_definition


def test_setup_py_reports_the_same_version():
    """``python setup.py --version`` must agree without importing repro."""
    out = subprocess.run(
        [sys.executable, "setup.py", "--version"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip().splitlines()[-1] == version_definition


def test_provenance_records_stamp_the_same_version(point_source_stack, depth_grid):
    """Run + analysis provenance and batch records all carry the one version."""
    stack, _source = point_source_stack
    run = repro.session(grid=depth_grid).run(stack)
    assert run.provenance()["repro_version"] == version_definition
    outcome = run.analyze("total_intensity")
    assert outcome.provenance()["repro_version"] == version_definition
    batch = repro.session(grid=depth_grid).run_many([stack])
    assert batch.to_dict()["repro_version"] == version_definition

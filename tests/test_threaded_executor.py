"""Threaded executor: identity, band planning, pool lifecycle, strategy plumbing.

The threaded backend's contract mirrors the multiprocess one — **bitwise
identity** with the serial engine under any chunking, any band split and any
worker count — plus the properties that make threads worth having: view-only
band dispatch (no slab copies), a bounded number of bands in flight during
streamed runs, and reuse of one persistent thread pool across runs.
"""

import numpy as np
import pytest

from repro.core.backends import get_backend
from repro.core.backends.threaded import (
    ThreadedExecutor,
    _band_context,
    _reconstruct_band,
)
from repro.core.backends.base import build_kernel_context
from repro.core.config import AUTO, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import (
    StackChunkSource,
    execute,
    execute_backend,
    make_strategy_executor,
)
from repro.core.workerpool import (
    shared_thread_pool,
    shutdown_shared_thread_pool,
)
from repro.io.image_stack import save_wire_scan
from repro.io.streaming import StreamingWireScanSource
from tests.helpers import make_tiny_stack


@pytest.fixture(autouse=True)
def _fresh_thread_pool():
    yield
    shutdown_shared_thread_pool()


def _noisy_stack(n_rows=7, n_cols=5, n_positions=17, masked=False, seed=13):
    stack = make_tiny_stack(n_rows=n_rows, n_cols=n_cols, n_positions=n_positions)
    rng = np.random.default_rng(seed)
    stack.images = stack.images + rng.random(stack.images.shape) * 5.0
    if masked:
        stack.pixel_mask = rng.random((n_rows, n_cols)) > 0.3
    return stack


def _grid():
    return DepthGrid.from_range(0.0, 100.0, 20)


def _serial_reference(stack, grid, **config_kwargs):
    config = ReconstructionConfig(grid=grid, backend="vectorized", **config_kwargs)
    result, _report = execute(
        StackChunkSource(stack), config, make_strategy_executor(config)
    )
    return result


class TestIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 8])
    def test_bitwise_identical_to_serial(self, n_workers):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        config = ReconstructionConfig(grid=grid, backend="threaded", n_workers=n_workers)
        result, report = get_backend("threaded").reconstruct(stack, config)
        assert np.array_equal(reference.data, result.data)
        assert report.backend == "threaded"

    @pytest.mark.parametrize("rows_per_chunk", [1, 2, 3, 100])
    def test_bitwise_identical_chunked(self, rows_per_chunk):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        config = ReconstructionConfig(
            grid=grid, backend="threaded", n_workers=2, rows_per_chunk=rows_per_chunk
        )
        result, _report = get_backend("threaded").reconstruct(stack, config)
        assert np.array_equal(reference.data, result.data)

    def test_bitwise_identical_streamed(self, tmp_path):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        path = str(tmp_path / "scan.h5lite")
        save_wire_scan(path, stack)
        config = ReconstructionConfig(
            grid=grid, backend="threaded", n_workers=2, rows_per_chunk=2
        )
        source = StreamingWireScanSource(path)
        result, report = execute_backend(source, config)
        assert source.accounting()["max_resident_rows"] == 2
        assert report.n_chunks == 4  # ceil(7 / 2)
        assert np.array_equal(reference.data, result.data)

    def test_tiny_band_floor_does_not_change_result(self):
        """Forcing 1-row bands (floor disabled) still reproduces serial."""
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        config = ReconstructionConfig(grid=grid, backend="threaded", n_workers=4)
        executor = ThreadedExecutor(min_elements_per_dispatch=1)
        result, _report = execute(StackChunkSource(stack), config, executor)
        assert np.array_equal(reference.data, result.data)

    def test_background_subtraction_identical(self):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid, subtract_background=True)
        config = ReconstructionConfig(
            grid=grid, backend="threaded", n_workers=2, subtract_background=True
        )
        result, _report = get_backend("threaded").reconstruct(stack, config)
        assert np.array_equal(reference.data, result.data)


class TestBandDispatch:
    def test_band_context_is_view_only(self):
        """Band contexts must alias the chunk slab — copies would defeat threads."""
        stack = _noisy_stack(masked=True)
        config = ReconstructionConfig(grid=_grid())
        ctx = build_kernel_context(stack, config)
        band = _band_context(ctx, 2, 5)
        assert band.images.base is not None
        assert np.shares_memory(band.images, ctx.images)
        assert np.shares_memory(band.mask, ctx.mask)
        assert band.n_rows == 3

    def test_band_reconstruction_is_contiguous(self):
        stack = _noisy_stack()
        ctx = build_kernel_context(stack, ReconstructionConfig(grid=_grid()))
        out = _reconstruct_band(_band_context(ctx, 1, 4))
        assert out.flags["C_CONTIGUOUS"]
        assert out.shape == (20, 3, stack.n_cols)

    def test_granularity_floor_coarsens_small_chunks(self):
        """A tiny chunk collapses to one band: no dispatch smaller than the floor."""
        stack = _noisy_stack(n_rows=6, n_cols=5, n_positions=9)
        grid = _grid()
        config = ReconstructionConfig(grid=grid, backend="threaded", n_workers=4)
        executor = ThreadedExecutor()
        source = StackChunkSource(stack)
        plan = executor.plan(source, config)
        executor.prepare(source, config, plan)
        ctx = build_kernel_context(stack, config)
        bands = executor._bands(ctx)
        # 8 * 6 * 5 = 240 elements << the 65536-element default floor
        assert bands == [(0, 6)]
        executor.close()

    def test_bounded_inflight_during_streamed_run(self, tmp_path):
        """A streamed run never queues more than 2 x workers bands."""
        stack = _noisy_stack(n_rows=12, n_cols=5, n_positions=9)
        path = str(tmp_path / "scan.h5lite")
        save_wire_scan(path, stack)
        config = ReconstructionConfig(
            grid=_grid(), backend="threaded", n_workers=2, rows_per_chunk=1
        )
        executor = ThreadedExecutor(min_elements_per_dispatch=1)
        source = StreamingWireScanSource(path)
        execute(source, config, executor)
        assert executor.peak_inflight <= 2 * 2

    def test_report_extras_count_bands_and_elements(self):
        stack = _noisy_stack(n_rows=8)
        config = ReconstructionConfig(grid=_grid(), backend="threaded", n_workers=2)
        executor = ThreadedExecutor(min_elements_per_dispatch=1)
        _result, report = execute(StackChunkSource(stack), config, executor)
        assert report.n_kernel_launches >= 2  # at least one band per worker
        assert report.n_threads_launched == 16 * 8 * stack.n_cols

    def test_worker_count_clamped_to_rows(self):
        stack = _noisy_stack(n_rows=3)
        config = ReconstructionConfig(grid=_grid(), backend="threaded", n_workers=16)
        executor = ThreadedExecutor()
        source = StackChunkSource(stack)
        executor.prepare(source, config, executor.plan(source, config))
        assert executor._n_workers == 3
        executor.close()


class TestPoolLifecycle:
    def test_shared_pool_reused_across_runs(self):
        stack = _noisy_stack()
        config = ReconstructionConfig(grid=_grid(), backend="threaded", n_workers=2)
        backend = get_backend("threaded")
        backend.reconstruct(stack, config)
        pool = shared_thread_pool(2)
        spawns_before = pool.n_spawns
        backend.reconstruct(stack, config)
        assert shared_thread_pool(2) is pool
        assert pool.n_spawns == spawns_before  # no new threadpool spawn

    def test_single_worker_runs_inline(self):
        stack = _noisy_stack()
        config = ReconstructionConfig(grid=_grid(), backend="threaded", n_workers=1)
        executor = ThreadedExecutor()
        source = StackChunkSource(stack)
        executor.prepare(source, config, executor.plan(source, config))
        assert executor._pool is None  # no pool touched for serial width
        result, report = execute(StackChunkSource(stack), config, ThreadedExecutor())
        assert "in-line" in " ".join(report.notes)
        reference = _serial_reference(stack, _grid())
        assert np.array_equal(reference.data, result.data)


class TestStrategyPlumbing:
    def test_executor_strategy_threads_on_vectorized_backend(self):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        config = ReconstructionConfig(
            grid=grid, backend="vectorized", executor="threads", n_workers=2
        )
        result, report = execute(
            StackChunkSource(stack), config, make_strategy_executor(config)
        )
        assert report.backend == "threaded"
        assert np.array_equal(reference.data, result.data)

    def test_executor_strategy_processes_on_vectorized_backend(self):
        stack = _noisy_stack(masked=True)
        grid = _grid()
        reference = _serial_reference(stack, grid)
        config = ReconstructionConfig(
            grid=grid, backend="vectorized", executor="processes", n_workers=2
        )
        result, report = execute(
            StackChunkSource(stack), config, make_strategy_executor(config)
        )
        assert report.backend == "multiprocess"
        assert np.array_equal(reference.data, result.data)
        from repro.core.workerpool import shutdown_shared_pool

        shutdown_shared_pool()

    def test_unresolved_auto_falls_back_to_serial(self):
        config = ReconstructionConfig(grid=_grid(), backend="vectorized", executor=AUTO)
        executor = make_strategy_executor(config)
        assert executor.name == "vectorized"

    def test_executor_field_round_trips_config(self):
        config = ReconstructionConfig(
            grid=_grid(), backend="vectorized", executor="threads", n_workers=AUTO
        )
        clone = ReconstructionConfig.from_dict(config.to_dict())
        assert clone.executor == "threads"
        assert clone.n_workers == AUTO

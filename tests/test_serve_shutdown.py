"""Lifecycle tests: graceful SIGTERM drain and idempotent teardown.

The satellite guarantee under test: a daemon killed with SIGTERM drains its
work, runs :func:`repro.core.workerpool.shutdown_all` from the drain path,
and when the interpreter's atexit hooks run the *same* teardown again the
double invocation is harmless — and /dev/shm ends up empty either way.
"""

import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import pytest

from repro.core.workerpool import (
    SlabArena,
    pools_snapshot,
    shared_pool,
    shared_thread_pool,
    shutdown_all,
    shutdown_shared_pool,
)


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _repo_env():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return repo_root, env


# --------------------------------------------------------------------------- #
class TestShutdownAllIdempotent:
    def test_double_invocation_in_process(self):
        """SIGTERM-then-atexit both call shutdown_all(); twice must be safe."""
        pool = shared_pool(2)
        assert pool.submit(abs, -3).result() == 3
        arena = SlabArena()
        slab = arena.lease(4096)
        shutdown_all()
        shutdown_all()  # the atexit re-run
        _assert_unlinked([slab.name])
        snapshot = pools_snapshot()
        assert snapshot["process_pool"] is None
        assert snapshot["thread_pool"] is None
        shutdown_shared_pool()  # leave the module-level state clean

    def test_pools_respawn_after_shutdown_all(self):
        """Teardown is terminal for state, not for the API: pools come back."""
        shared_pool(2).submit(abs, -1).result()
        shutdown_all()
        assert shared_pool(2).submit(abs, -7).result() == 7
        assert shared_thread_pool(2).submit(abs, -9).result() == 9
        shutdown_all()


# --------------------------------------------------------------------------- #
_SIGTERM_DAEMON = """\
import os, signal, sys, tempfile, threading

from repro.core.workerpool import SlabArena, shared_pool
from repro.io.image_stack import save_wire_scan
from repro.serve import ServeSettings, ServeClient, start_in_thread
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from tests.helpers import make_tiny_stack

tmp = tempfile.mkdtemp(prefix="serve-sigterm-")
scan = os.path.join(tmp, "scan.h5lite")
save_wire_scan(scan, make_tiny_stack(n_rows=4, n_cols=3, n_positions=15))

# live shared state the drain must tear down: a busy pool and an shm slab
pool = shared_pool(2)
pool.submit(abs, -5).result()
arena = SlabArena()
slab = arena.lease(8192)
print("SLAB", slab.name, flush=True)

settings = ServeSettings(port=0, workers=1, cache=os.path.join(tmp, "cache"),
                         drain_timeout_s=20.0)
handle = start_in_thread(settings)
client = ServeClient(base_url=handle.base_url)
config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 10))
accepted = client.submit(scan, config=config.to_dict())
result = client.wait(accepted["job"]["id"], timeout_s=60)
assert result["provenance"], "job must finish before the signal arrives"
print("SERVED", flush=True)

# a real SIGTERM delivered to ourselves; the handler drains the daemon
# thread, then exits normally so atexit runs the same teardown again
def _on_term(signum, frame):
    handle.stop(timeout=30)
    print("DRAINED", flush=True)
    sys.exit(0)

signal.signal(signal.SIGTERM, _on_term)
os.kill(os.getpid(), signal.SIGTERM)
threading.Event().wait(60)
raise SystemExit("SIGTERM handler never fired")
"""


class TestSigtermDrain:
    def _run(self, body, timeout=120):
        repo_root, env = _repo_env()
        return subprocess.run(
            [sys.executable, "-c", body], capture_output=True, text=True,
            timeout=timeout, cwd=repo_root, env=env,
        )

    def test_sigterm_drains_and_leaks_nothing(self):
        """SIGTERM => graceful drain, clean exit code 0, empty /dev/shm.

        The daemon runs on a background thread (as in tests/benchmarks), so
        the subprocess installs a SIGTERM handler that requests the drain and
        then exits the interpreter — exercising exactly the
        signal-then-atexit double-teardown path.
        """
        proc = self._run(_SIGTERM_DAEMON)
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.splitlines()
        assert "SERVED" in lines and "DRAINED" in lines
        slab_names = [line.split()[1] for line in lines if line.startswith("SLAB")]
        assert slab_names, "the subprocess should have printed its slab name"
        _assert_unlinked(slab_names)

    def test_run_server_process_drains_on_sigterm(self, tmp_path):
        """A real ``repro-serve`` process (loop signal handler) drains on TERM."""
        repo_root, env = _repo_env()
        port_file = tmp_path / "port"
        body = (
            "import sys\n"
            "from repro.serve import ServeSettings, ReproServer\n"
            "import asyncio\n"
            "async def main():\n"
            "    server = ReproServer(ServeSettings(port=0, workers=1, cache=False,\n"
            "                                       drain_timeout_s=10.0))\n"
            "    loop = asyncio.get_running_loop()\n"
            "    import signal\n"
            "    for signum in (signal.SIGTERM, signal.SIGINT):\n"
            "        loop.add_signal_handler(signum, server.request_shutdown)\n"
            "    await server.start()\n"
            f"    open({str(port_file)!r}, 'w').write(str(server.port))\n"
            "    await server._shutdown_event.wait()\n"
            "    await server.drain()\n"
            "    print('DRAINED', flush=True)\n"
            "asyncio.run(main())\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", body], stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, cwd=repo_root, env=env,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert port_file.exists(), "server never wrote its port"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert "DRAINED" in stdout

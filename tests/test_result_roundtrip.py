"""The persistent RunResult round-trip: ``run.save(path)`` → ``repro.load(path)``.

The acceptance bar for the results-side redesign: stack data round-trips
bitwise-identical and the provenance record survives intact (modulo the
``outputs`` block, which the save itself legitimately fills in) on all four
backends.
"""

import json
import os

import numpy as np
import pytest

import repro
from repro.core.registry import available_backends
from repro.core.session import BatchRunResult, load, session
from repro.io.image_stack import (
    load_depth_resolved,
    load_run_payload,
    save_depth_resolved,
    save_wire_scan,
)
from repro.utils.validation import ValidationError


def _provenance_modulo_outputs(run):
    record = run.provenance()
    record.pop("outputs")
    return record


class TestSaveLoadRoundTrip:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_round_trip_all_backends(self, backend, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid, backend=backend).run(stack)
        path = tmp_path / f"{backend}.h5lite"

        loaded = repro.load(run.save(path).output_path)

        # bitwise-identical stack data, identical grid
        assert loaded.result.data.tobytes() == run.result.data.tobytes()
        assert loaded.result.grid == run.result.grid
        # provenance equal modulo outputs — as dicts and as JSON documents
        assert _provenance_modulo_outputs(loaded) == _provenance_modulo_outputs(run)
        assert json.dumps(loaded.provenance()["config"], sort_keys=True) == json.dumps(
            run.provenance()["config"], sort_keys=True
        )
        # the full report survives, not just the provenance summary
        assert loaded.report.to_dict() == run.report.to_dict()
        assert loaded.config == run.config

    def test_output_and_text_paths_survive(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        text_path = tmp_path / "profiles.txt"
        out_path = tmp_path / "depth.h5lite"
        run = session(grid=depth_grid).run(
            stack, output_path=out_path, text_path=text_path, text_pixels=[(1, 2), (3, 4)]
        )

        loaded = load(out_path)
        assert loaded.output_path == str(out_path)
        assert loaded.text_path == str(text_path)
        assert loaded.profile_pixels == [[1, 2], [3, 4]]

    def test_default_profile_pixel_recorded(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        run.write_profiles(tmp_path / "p.txt")
        assert run.profile_pixels is not None and len(run.profile_pixels) == 1
        assert run.provenance()["outputs"]["profile_pixels"] == run.profile_pixels

    def test_load_rejects_record_less_file(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        bare = tmp_path / "bare.h5lite"
        save_depth_resolved(bare, run.result)  # no run record
        with pytest.raises(ValidationError, match="load_depth_resolved"):
            load(bare)
        # the bare reader still handles both flavours
        assert load_depth_resolved(bare).total_intensity() == run.result.total_intensity()

    def test_load_payload_reads_record_in_one_open(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        path = tmp_path / "full.h5lite"
        run.save(path)
        result, record = load_run_payload(path)
        np.testing.assert_array_equal(result.data, run.result.data)
        assert record["report"]["backend"] == "vectorized"
        assert record["outputs"]["output_path"] == str(path)

    def test_old_reader_still_reads_new_files(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        path = tmp_path / "compat.h5lite"
        run.save(path)
        np.testing.assert_array_equal(load_depth_resolved(path).data, run.result.data)


class TestBatchPersistence:
    def test_save_all_then_load_dir(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        batch = session(grid=depth_grid).run_many([stack, stack])
        out_dir = tmp_path / "runs"
        paths = batch.save_all(out_dir)
        assert len(paths) == 2 and all(os.path.exists(p) for p in paths)
        # collision suffixing: identical stems must not overwrite
        assert len(set(paths)) == 2

        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 2 and loaded.n_failed == 0
        assert loaded.config == batch.config
        assert loaded.backend == "vectorized"
        for item, original in zip(loaded.succeeded, batch.succeeded):
            assert item.result.data.tobytes() == original.result.data.tobytes()
            assert item.run is not None and item.run.config == batch.config

    def test_save_all_requires_kept_results(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        batch = session(grid=depth_grid).run_many([stack], keep_results=False)
        with pytest.raises(ValidationError, match="keep_results"):
            batch.save_all(tmp_path / "nope")

    def test_load_dir_skips_foreign_files_and_captures_bad_ones(
        self, tmp_path, point_source_stack, depth_grid
    ):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        out_dir = tmp_path / "mixed"
        os.makedirs(out_dir)
        run.save(out_dir / "good_depth.h5lite")
        # a wire-scan input sitting alongside must be skipped, not failed
        save_wire_scan(out_dir / "input_scan.h5lite", stack)
        # a corrupt .h5lite file is captured as a failed item (per-item
        # isolation, like run_many) — never silently dropped
        (out_dir / "junk.h5lite").write_bytes(b"garbage")

        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 1 and loaded.n_failed == 1
        assert loaded.succeeded[0].input_path.endswith("good_depth.h5lite")
        assert loaded.failed[0].input_path.endswith("junk.h5lite")
        assert "H5LiteError" in loaded.failed[0].error

    def test_load_dir_mixed_configs_drop_shared_config(self, tmp_path, point_source_stack):
        stack, _ = point_source_stack
        out_dir = tmp_path / "mixed_cfg"
        os.makedirs(out_dir)
        grid_a = repro.DepthGrid.from_range(0.0, 100.0, 25)
        grid_b = repro.DepthGrid.from_range(0.0, 100.0, 20)
        session(grid=grid_a).run(stack).save(out_dir / "a.h5lite")
        session(grid=grid_b).run(stack).save(out_dir / "b.h5lite")
        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 2
        assert loaded.config is None

    def test_load_dir_requires_directory(self, tmp_path):
        with pytest.raises(ValidationError, match="directory"):
            BatchRunResult.load_dir(tmp_path / "missing")


class TestSaveFailureRollback:
    def test_failed_save_does_not_claim_output(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        good = tmp_path / "good.h5lite"
        run.save(good)
        with pytest.raises(OSError):
            run.save(tmp_path / "no_such_dir" / "depth.h5lite")
        # provenance must keep pointing at the last file actually written
        assert run.output_path == str(good)
        assert run.provenance()["outputs"]["output_path"] == str(good)


class TestLoadDirSkipsLegacyFiles:
    def test_record_less_depth_files_are_skipped_not_failed(
        self, tmp_path, point_source_stack, depth_grid
    ):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        out_dir = tmp_path / "legacy"
        os.makedirs(out_dir)
        run.save(out_dir / "with_record.h5lite")
        save_depth_resolved(out_dir / "legacy_bare.h5lite", run.result)  # pre-redesign shape
        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 1 and loaded.n_failed == 0

    def test_corrupt_run_file_is_a_failed_item(self, tmp_path, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        out_dir = tmp_path / "corrupt"
        os.makedirs(out_dir)
        run.save(out_dir / "ok.h5lite")
        # a run file whose record lost its config block: captured, not raised
        from repro.io.h5lite import H5LiteFile
        from repro.io.image_stack import RUN_RECORD_ATTR

        bad_path = out_dir / "bad.h5lite"
        run.save(bad_path)
        with H5LiteFile(bad_path, "r") as fh:
            pass  # ensure readable before corrupting
        record = run._run_record()
        record.pop("config")
        save_depth_resolved(bad_path, run.result, run_record=record)
        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 1 and loaded.n_failed == 1
        assert "config" in loaded.failed[0].error


class TestMovedFiles:
    def test_loaded_output_path_tracks_the_actual_file(
        self, tmp_path, point_source_stack, depth_grid
    ):
        import shutil

        stack, _ = point_source_stack
        run = session(grid=depth_grid).run(stack)
        original = tmp_path / "depth.h5lite"
        run.save(original)
        moved = tmp_path / "moved.h5lite"
        shutil.move(str(original), str(moved))
        loaded = load(moved)
        # provenance must describe the file that exists, not the save-time path
        assert loaded.output_path == str(moved)

    def test_non_object_header_file_is_a_failed_item(
        self, tmp_path, point_source_stack, depth_grid
    ):
        stack, _ = point_source_stack
        out_dir = tmp_path / "oddball"
        os.makedirs(out_dir)
        session(grid=depth_grid).run(stack).save(out_dir / "ok.h5lite")
        body = b"[1, 2, 3]"
        (out_dir / "list.h5lite").write_bytes(
            b"H5LITE01" + np.uint64(len(body)).tobytes() + body
        )
        loaded = BatchRunResult.load_dir(out_dir)
        assert loaded.n_ok == 1 and loaded.n_failed == 1

"""Tests for the concurrency lint rules: ``thread-escape``,
``lock-discipline`` and the interprocedural ``kernel-determinism`` sweep.

Each rule gets tripping and passing fixtures on synthetic packages, the
planted-race fixture (``tests/fixtures/racepkg``) proves the end-to-end
story the README documents, and suppression comments are verified to
waive project-scope findings at the site they anchor to.
"""

import textwrap
from pathlib import Path

from repro.staticcheck import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
RACEPKG = REPO_ROOT / "tests" / "fixtures" / "racepkg"


def _write_pkg(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(tmp_path)


def _rules_fired(report):
    return {finding.rule for finding in report.gating}


# --------------------------------------------------------------------------- #
class TestLockDiscipline:
    RULE = ["lock-discipline"]

    def test_unguarded_write_to_inferred_guarded_field_flagged(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def sneak(self):
                    self.total += 1
        """})], rule_ids=self.RULE)
        assert _rules_fired(report) == {"lock-discipline"}
        (finding,) = report.gating
        assert "sneak" in finding.message and "self.total" in finding.message

    def test_all_writes_guarded_passes(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n
        """})], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_init_writes_exempt(self, tmp_path):
        # construction precedes sharing: __init__ may write bare
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            import threading

            class Counter:
                def __init__(self, start):
                    self._lock = threading.Lock()
                    self.total = start

                def reset(self):
                    with self._lock:
                        self.total = 0
        """})], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_class_without_lock_not_governed(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            class Plain:
                def __init__(self):
                    self.total = 0

                def add(self, n):
                    self.total += n
        """})], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_lock_acquire_try_finally_counts_as_guarded(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def add_timeout(self, n):
                    self._lock.acquire(timeout=1.0)
                    try:
                        self.total += n
                    finally:
                        self._lock.release()
        """})], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_suppression_waives_but_records(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {"mod.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def sneak(self):
                    self.total += 1  # repro-lint: ignore[lock-discipline]
        """})], rule_ids=self.RULE)
        assert report.exit_code() == 0
        assert [f.rule for f in report.suppressed] == ["lock-discipline"]


# --------------------------------------------------------------------------- #
class TestThreadEscape:
    RULE = ["thread-escape"]

    def test_planted_race_fixture_flagged(self):
        report = lint_paths([str(RACEPKG)], rule_ids=self.RULE)
        (finding,) = report.gating
        assert finding.rule == "thread-escape"
        assert finding.path.endswith("board.py")
        assert "bump_miss" in finding.message
        # the finding tells the whole story: the submission site that
        # makes the function thread-reachable is named with its location
        assert "runner.py" in finding.message and "Thread" in finding.message

    def test_locked_write_in_submitted_callable_passes(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import threading

                class Shared:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1

                def drive(shared: Shared, pool):
                    pool.submit(shared.bump)
            """,
        })], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_module_global_rebind_from_thread_flagged(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import threading

                _TICKS = 0

                def tick():
                    global _TICKS
                    _TICKS += 1

                def run():
                    worker = threading.Thread(target=tick)
                    worker.start()
            """,
        })], rule_ids=self.RULE)
        assert _rules_fired(report) == {"thread-escape"}
        assert "_TICKS" in report.gating[0].message

    def test_unsubmitted_function_not_governed(self, tmp_path):
        # the same unlocked global rebind is fine when nothing threads it
        report = lint_paths([_write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                _TICKS = 0

                def tick():
                    global _TICKS
                    _TICKS += 1
            """,
        })], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_suppression_waives_project_scope_finding_at_site(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import threading

                _TICKS = 0

                def tick():
                    global _TICKS
                    # single writer thread; readers tolerate staleness
                    # repro-lint: ignore[thread-escape]
                    _TICKS += 1

                def run():
                    worker = threading.Thread(target=tick)
                    worker.start()
            """,
        })], rule_ids=self.RULE)
        assert report.exit_code() == 0
        assert [f.rule for f in report.suppressed] == ["thread-escape"]


# --------------------------------------------------------------------------- #
class TestInterproceduralKernelDeterminism:
    RULE = ["kernel-determinism"]

    def test_env_read_in_reachable_helper_flagged(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "core/kernels/k.py": """
                from helper import ambient_threads

                def kernel(values):
                    return ambient_threads() * len(values)
            """,
            "util/helper.py": """
                import os

                def ambient_threads():
                    return int(os.getenv("OMP_NUM_THREADS", "1"))
            """,
        })], rule_ids=self.RULE)
        assert _rules_fired(report) == {"kernel-determinism"}
        (finding,) = report.gating
        assert finding.path.endswith("helper.py")
        assert "reachable from kernel entry" in finding.message
        assert "kernel" in finding.message

    def test_unreachable_helper_not_governed(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "core/kernels/k.py": """
                def kernel(values):
                    return sum(values)
            """,
            "util/helper.py": """
                import os

                def ambient_threads():
                    return int(os.getenv("OMP_NUM_THREADS", "1"))
            """,
        })], rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_clock_read_two_hops_out_flagged(self, tmp_path):
        report = lint_paths([_write_pkg(tmp_path, {
            "core/kernels/k.py": """
                from helper import stamp

                def kernel(values):
                    return stamp(values)
            """,
            "util/helper.py": """
                import time

                def stamp(values):
                    return now() + len(values)

                def now():
                    return time.perf_counter()
            """,
        })], rule_ids=self.RULE)
        messages = [f.message for f in report.gating]
        assert any("clock read" in m for m in messages)

    def test_set_iteration_stays_module_local(self, tmp_path):
        # the set-order check governs kernel modules, not reachable helpers
        report = lint_paths([_write_pkg(tmp_path, {
            "core/kernels/k.py": """
                from helper import total

                def kernel(values):
                    return total(values)
            """,
            "util/helper.py": """
                def total(values):
                    acc = 0.0
                    for value in set(values):
                        acc += value
                    return acc
            """,
        })], rule_ids=self.RULE)
        assert report.exit_code() == 0

"""The analysis-ops registry and the composable analysis pipeline."""

import json

import numpy as np
import pytest

import repro
from repro.core.depth_grid import DepthGrid
from repro.core.ops import (
    AnalysisPipeline,
    OpInfo,
    analysis,
    as_pipeline,
    available_ops,
    op_info,
    ops,
    register_op,
    register_op_info,
    unregister_op,
)
from repro.core.result import DepthResolvedStack
from repro.core.session import session
from repro.utils.validation import ValidationError

BUILTIN_OPS = {
    "peaks", "fwhm", "grain_boundaries", "depth_resolution",
    "total_intensity", "integrated_profile",
}


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 25)


@pytest.fixture()
def run(point_source_stack, grid):
    stack, _ = point_source_stack
    return session(grid=grid).run(stack)


# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_OPS <= set(available_ops())
        listing = ops()
        assert [info.name for info in listing] == sorted(available_ops())
        assert all(isinstance(info, OpInfo) for info in listing)

    def test_single_lookup_and_metadata(self):
        info = ops("peaks")
        assert info.name == "peaks"
        assert info.module == "repro.core.ops"
        assert "min_relative_height" in info.parameters()
        payload = info.to_dict()
        assert payload["parameters"]["min_separation_bins"] == 2

    def test_unknown_op_suggests(self):
        with pytest.raises(ValidationError, match="did you mean 'peaks'"):
            op_info("peeks")

    def test_register_and_unregister(self, grid):
        @register_op("bin_count", description="number of depth bins")
        def bin_count(result):
            return result.grid.n_bins

        try:
            stack = DepthResolvedStack(data=np.ones((grid.n_bins, 2, 2)), grid=grid)
            outcome = analysis("bin_count").apply(stack)
            assert outcome["bin_count"] == grid.n_bins
        finally:
            info = unregister_op("bin_count")
        assert "bin_count" not in available_ops()
        # re-registering the returned info restores it (plugin teardown contract)
        register_op_info(info)
        assert "bin_count" in available_ops()
        unregister_op("bin_count")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            @register_op("peaks")
            def peaks(result):  # pragma: no cover - never registered
                return None

    def test_bare_decorator_uses_function_name(self):
        @register_op
        def my_bare_op(result):
            """My one-liner."""
            return 1.0

        try:
            assert op_info("my_bare_op").description == "My one-liner."
        finally:
            unregister_op("my_bare_op")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValidationError, match="cannot unregister"):
            unregister_op("nope")


# --------------------------------------------------------------------------- #
class TestPipelineConstruction:
    def test_then_returns_new_pipeline(self):
        base = analysis("peaks")
        extended = base.then("fwhm")
        assert len(base) == 1 and len(extended) == 2
        assert base is not extended
        assert [step.op for step in extended.steps] == ["peaks", "fwhm"]

    def test_specs_forms(self):
        pipeline = analysis(
            "peaks",
            ("grain_boundaries", {"smooth_bins": 5}),
            {"op": "fwhm"},
        )
        assert [step.op for step in pipeline.steps] == ["peaks", "grain_boundaries", "fwhm"]
        assert pipeline.steps[1].params_dict == {"smooth_bins": 5}

    def test_unknown_op_fails_at_construction(self):
        with pytest.raises(ValidationError, match="unknown analysis op"):
            analysis("peaks", "nope")

    def test_unknown_parameter_fails_at_construction(self):
        with pytest.raises(ValidationError, match="rejects parameters"):
            analysis(("peaks", {"min_relative_heigth": 0.2}))

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValidationError, match="invalid op spec"):
            analysis(42)

    def test_describe(self):
        pipeline = analysis("peaks", ("fwhm", {}))
        assert "peaks" in pipeline.describe() and "fwhm" in pipeline.describe()

    def test_as_pipeline_coercions(self):
        assert len(as_pipeline("peaks")) == 1
        assert len(as_pipeline(["peaks", "fwhm"])) == 2
        assert len(as_pipeline(("peaks", {"min_separation_bins": 3}))) == 1
        ready = analysis("fwhm")
        assert as_pipeline(ready) is ready
        with pytest.raises(ValidationError):
            as_pipeline(3.14)

    def test_empty_pipeline_refuses_to_apply(self, grid):
        stack = DepthResolvedStack(data=np.ones((grid.n_bins, 2, 2)), grid=grid)
        with pytest.raises(ValidationError, match="empty analysis pipeline"):
            AnalysisPipeline().apply(stack)


# --------------------------------------------------------------------------- #
class TestApply:
    def test_apply_to_run_chains_provenance(self, run):
        outcome = repro.analysis("peaks", "fwhm").apply(run)
        assert outcome.op_names() == ["peaks", "fwhm"]
        chain = outcome.provenance()
        assert chain["run"]["backend"] == "vectorized"
        assert chain["ops"][0] == {"op": "peaks", "params": {}}
        assert json.loads(outcome.to_json())["provenance"]["run"]["config"]["backend"] == "vectorized"

    def test_apply_to_bare_stack(self, grid):
        data = np.zeros((grid.n_bins, 2, 2))
        data[10] = 1.0
        outcome = repro.analysis("total_intensity").apply(
            DepthResolvedStack(data=data, grid=grid)
        )
        assert outcome["total_intensity"] == pytest.approx(4.0)
        assert outcome.provenance()["run"] is None

    def test_apply_to_saved_file_matches_in_memory(self, run, tmp_path):
        path = tmp_path / "depth.h5lite"
        run.save(path)
        pipeline = repro.analysis("peaks", "fwhm", "depth_resolution")
        assert pipeline.apply(run).to_json() == pipeline.apply(str(path)).to_json()

    def test_values_and_getitem(self, run):
        outcome = repro.analysis("peaks", "total_intensity").apply(run)
        assert set(outcome.values) == {"peaks", "total_intensity"}
        assert outcome["total_intensity"] > 0
        assert "peaks" in outcome and "fwhm" not in outcome
        with pytest.raises(KeyError):
            outcome["fwhm"]

    def test_values_are_strict_json(self, run):
        outcome = repro.analysis("peaks", "integrated_profile", "grain_boundaries").apply(run)
        # must survive a strict (allow_nan=False) JSON round trip
        json.loads(json.dumps(outcome.to_dict(), allow_nan=False))

    def test_params_recorded_in_results(self, run):
        outcome = repro.analysis(("peaks", {"min_relative_height": 0.3})).apply(run)
        assert outcome.results[0]["params"] == {"min_relative_height": 0.3}

    def test_apply_rejects_unknown_target(self):
        with pytest.raises(ValidationError, match="apply to"):
            repro.analysis("peaks").apply(3.14)

    def test_op_error_propagates_for_single_target(self, grid):
        empty = DepthResolvedStack(data=np.zeros((grid.n_bins, 2, 2)), grid=grid)
        with pytest.raises(ValidationError, match="no signal"):
            repro.analysis("depth_resolution").apply(empty)


# --------------------------------------------------------------------------- #
class TestBatchApply:
    def test_fan_out_with_error_capture(self, point_source_stack, grid, tmp_path):
        stack, _ = point_source_stack
        missing = str(tmp_path / "missing.h5lite")
        batch = session(grid=grid).run_many([stack, missing])
        assert batch.n_ok == 1 and batch.n_failed == 1

        outcome = repro.analysis("fwhm").apply(batch)
        assert outcome.n_ok == 1 and outcome.n_failed == 1
        ok_item = outcome.succeeded[0]
        assert ok_item.analysis["fwhm"] > 0
        failed = outcome.failed[0]
        assert failed.analysis is None and "reconstruction failed" in failed.error
        payload = json.loads(outcome.to_json())
        assert payload["n_ok"] == 1
        assert payload["provenance"]["ops"] == [{"op": "fwhm", "params": {}}]

    def test_op_failure_is_isolated_per_item(self, point_source_stack, grid):
        stack, _ = point_source_stack
        batch = session(grid=grid).run_many([stack, stack])
        # zero out the second item so depth_resolution raises only there
        batch.items[1].run.result.data[:] = 0.0
        outcome = repro.analysis("depth_resolution").apply(batch)
        assert outcome.n_ok == 1 and outcome.n_failed == 1
        assert "ValidationError" in outcome.failed[0].error

    def test_keep_results_false_without_outputs_is_captured(self, point_source_stack, grid):
        stack, _ = point_source_stack
        batch = session(grid=grid).run_many([stack], keep_results=False)
        outcome = repro.analysis("fwhm").apply(batch)
        assert outcome.n_failed == 1
        assert "keep_results" in outcome.failed[0].error

    def test_items_without_results_fall_back_to_files(self, point_source_stack, grid, tmp_path):
        stack, _ = point_source_stack
        batch = session(grid=grid).run_many(
            [stack], keep_results=False, output_dir=str(tmp_path / "out")
        )
        outcome = repro.analysis("fwhm").apply(batch)
        assert outcome.n_ok == 1


# --------------------------------------------------------------------------- #
class TestSurfaces:
    def test_run_result_analyze(self, run):
        outcome = run.analyze("peaks", "fwhm")
        assert outcome is run.analysis
        assert outcome.op_names() == ["peaks", "fwhm"]

    def test_run_result_analyze_single_op_params(self, run):
        outcome = run.analyze("peaks", min_relative_height=0.3)
        assert outcome.results[0]["params"] == {"min_relative_height": 0.3}

    def test_run_result_analyze_kwargs_need_single_op(self, run):
        with pytest.raises(ValidationError, match="exactly one op"):
            run.analyze("peaks", "fwhm", min_relative_height=0.3)

    def test_session_run_analyze(self, point_source_stack, grid):
        stack, _ = point_source_stack
        run = session(grid=grid).run(stack, analyze=["peaks", "fwhm"])
        assert run.analysis is not None
        assert run.analysis.op_names() == ["peaks", "fwhm"]
        assert run.analysis.provenance()["run"]["backend"] == "vectorized"

    def test_session_run_analyze_accepts_pipeline(self, point_source_stack, grid):
        stack, _ = point_source_stack
        pipeline = repro.analysis("total_intensity")
        run = session(grid=grid).run(stack, analyze=pipeline)
        assert run.analysis["total_intensity"] > 0

    def test_top_level_exports(self):
        assert repro.available_ops() == available_ops()
        assert isinstance(repro.analysis("peaks"), repro.AnalysisPipeline)
        assert repro.ops("fwhm").name == "fwhm"

    def test_submodules_not_shadowed_by_factories(self):
        # repro.analysis (function) must not shadow repro.core.analysis
        # (module): the README promises the free functions keep working
        # through attribute access
        import repro.core.analysis as analysis_module
        import repro.core.ops as ops_module

        assert callable(analysis_module.find_profile_peaks)
        assert callable(analysis_module.profile_fwhm)
        assert callable(ops_module.register_op)
        assert repro.core.analysis is analysis_module
        assert repro.core.ops is ops_module


class TestParamNormalization:
    def test_numpy_params_serialize(self, run):
        import numpy as np

        outcome = repro.analysis(("peaks", {"min_separation_bins": np.int64(2)})).apply(run)
        # must not crash after the analysis already ran
        json.loads(outcome.to_json())
        assert outcome.results[0]["params"] == {"min_separation_bins": 2}

    def test_unserializable_params_fail_at_construction(self):
        with pytest.raises(ValidationError, match="JSON-serialisable"):
            repro.analysis(("peaks", {"min_relative_height": object()}))

"""Unit tests for the simulated device and its memory pool."""

import numpy as np
import pytest

from repro.cudasim.device import Device, DeviceProperties, GENERIC_LAPTOP_GPU, TESLA_M2070
from repro.cudasim.errors import DeviceMemoryError, InvalidBufferError, LaunchConfigError
from repro.utils.validation import ValidationError


class TestDeviceProperties:
    def test_tesla_m2070_matches_paper(self):
        # the evaluation section: 6 GB memory, 1024 threads/block,
        # block dims 1024x1024x64, grid dims 65535x65535x1
        assert TESLA_M2070.total_memory_bytes == 6 * 1024**3
        assert TESLA_M2070.max_threads_per_block == 1024
        assert TESLA_M2070.max_block_dim == (1024, 1024, 64)
        assert TESLA_M2070.max_grid_dim == (65535, 65535, 1)

    def test_performance_model_uses_device_numbers(self):
        model = TESLA_M2070.performance_model()
        assert model.peak_flops == TESLA_M2070.peak_flops
        assert model.pcie_bandwidth == TESLA_M2070.pcie_bandwidth

    def test_invalid_properties_rejected(self):
        with pytest.raises(ValidationError):
            DeviceProperties(total_memory_bytes=0)


class TestDeviceClock:
    def test_clock_starts_at_zero(self):
        assert Device(GENERIC_LAPTOP_GPU).simulated_time == 0.0

    def test_advance_clock_accumulates_and_records(self):
        device = Device(GENERIC_LAPTOP_GPU)
        device.advance_clock(0.25, label="x", kind="kernel")
        device.advance_clock(0.5, label="y", kind="memcpy_h2d")
        assert np.isclose(device.simulated_time, 0.75)
        assert len(device.profiler.records) == 2

    def test_advance_clock_rejects_negative(self):
        device = Device(GENERIC_LAPTOP_GPU)
        with pytest.raises(ValueError):
            device.advance_clock(-1.0, label="bad", kind="kernel")

    def test_reset_clock(self):
        device = Device(GENERIC_LAPTOP_GPU)
        device.advance_clock(1.0, label="x", kind="kernel")
        device.reset_clock()
        assert device.simulated_time == 0.0
        assert device.profiler.records == []


class TestLaunchValidation:
    def test_valid_launch_accepted(self):
        Device(TESLA_M2070).validate_launch((10, 10, 1), (32, 8, 4))

    def test_too_many_threads_per_block(self):
        with pytest.raises(LaunchConfigError):
            Device(TESLA_M2070).validate_launch((1, 1, 1), (32, 32, 2))

    def test_grid_z_limit_of_the_m2070(self):
        with pytest.raises(LaunchConfigError):
            Device(TESLA_M2070).validate_launch((1, 1, 2), (1, 1, 1))

    def test_block_dim_axis_limit(self):
        with pytest.raises(LaunchConfigError):
            Device(TESLA_M2070).validate_launch((1, 1, 1), (1, 1, 128))

    def test_zero_dimension_rejected(self):
        with pytest.raises(LaunchConfigError):
            Device(TESLA_M2070).validate_launch((0, 1, 1), (1, 1, 1))


class TestMemoryPool:
    def test_allocation_accounting(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=1024)
        buf = device.memory.allocate((16,), np.float64)  # 128 bytes
        assert device.memory.used_bytes == 128
        assert device.memory.free_bytes == 1024 - 128
        buf.free()
        assert device.memory.used_bytes == 0

    def test_out_of_memory(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=100)
        with pytest.raises(DeviceMemoryError):
            device.memory.allocate((100,), np.float64)

    def test_oom_after_partial_fill(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=1000)
        device.memory.allocate((100,), np.float64)  # 800 bytes
        with pytest.raises(DeviceMemoryError):
            device.memory.allocate((50,), np.float64)  # +400 would exceed

    def test_peak_tracking(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=4096)
        a = device.memory.allocate((64,), np.float64)
        b = device.memory.allocate((64,), np.float64)
        a.free()
        b.free()
        assert device.memory.peak_bytes == 1024
        assert device.memory.used_bytes == 0

    def test_use_after_free_raises(self):
        device = Device(GENERIC_LAPTOP_GPU)
        buf = device.memory.allocate((8,), np.float64)
        buf.free()
        with pytest.raises(InvalidBufferError):
            buf.device_array()

    def test_double_free_is_idempotent(self):
        device = Device(GENERIC_LAPTOP_GPU)
        buf = device.memory.allocate((8,), np.float64)
        buf.free()
        buf.free()
        assert device.memory.used_bytes == 0

    def test_fill(self):
        device = Device(GENERIC_LAPTOP_GPU)
        buf = device.memory.allocate((4, 4), np.float64)
        buf.fill(3.0)
        np.testing.assert_allclose(buf.device_array(), 3.0)

    def test_can_fit(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=1000)
        assert device.memory.can_fit(1000)
        assert not device.memory.can_fit(1001)

    def test_reset(self):
        device = Device(GENERIC_LAPTOP_GPU, memory_limit_bytes=1000)
        device.memory.allocate((10,), np.float64)
        device.memory.reset()
        assert device.memory.used_bytes == 0
        assert device.memory.n_live_allocations == 0

"""Concurrent use of one cache root under serving-style load.

The serve daemon turns the result cache into shared mutable state probed
and written from many threads (admission executor, compute executor, other
daemons on the same host).  These tests pin the guarantees that make that
safe:

* the atomic temp-write + ``os.replace`` store means a reader concurrent
  with any number of writers sees either a complete verified entry or a
  miss — never a partial file;
* the corrupt-entry repair path is race-safe: many threads discovering the
  same broken entry all miss, and the repair (delete) tolerates the file
  already being gone;
* two daemons sharing one root see each other's stores (second daemon's
  first submission is a warm hit).
"""

import glob
import os
import threading

import pytest

import repro
from repro.core.cache import ResultCache
from repro.core.depth_grid import DepthGrid
from repro.io.image_stack import save_wire_scan
from repro.serve import ServeClient, ServeSettings, start_in_thread
from tests.helpers import make_tiny_stack


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 12)


@pytest.fixture()
def scan_file(tmp_path):
    path = str(tmp_path / "scan.h5lite")
    save_wire_scan(path, make_tiny_stack(n_rows=4, n_cols=3, n_positions=15))
    return path


def _entry_path(cache_root):
    entries = glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))
    assert len(entries) == 1
    return entries[0]


def _run_threads(n, target):
    errors = []

    def _wrapped(index):
        try:
            target(index)
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=_wrapped, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


# --------------------------------------------------------------------------- #
class TestAtomicReplaceUnderLoad:
    def test_readers_race_writers_on_one_key(self, tmp_path, grid, scan_file):
        """Concurrent put/get on one key: every get is a verified hit or a miss."""
        root = str(tmp_path / "cache")
        session = repro.session(grid=grid)
        key = session.cache_key(scan_file)
        run = session.run(scan_file, cache=False)
        reference = run.result.data.tobytes()
        barrier = threading.Barrier(10)

        def worker(index):
            cache = ResultCache(root)  # own instance, shared root (daemon-style)
            barrier.wait()
            for _ in range(5):
                if index % 2 == 0:
                    cache.put(key, run)  # repeated overwrite: atomic replace
                else:
                    got = cache.get(key)
                    if got is not None:  # a miss is legal before the 1st store
                        assert got.result.data.tobytes() == reference

        _run_threads(10, worker)
        cache = ResultCache(root)
        assert cache.stats()["n_runs"] == 1
        assert cache.verify()["n_repaired"] == 0
        # no temp droppings from the concurrent writers
        leftovers = [name for name in glob.glob(os.path.join(root, "runs", "*", "*"))
                     if not name.endswith(".h5lite")]
        assert leftovers == []

    def test_counters_survive_thread_storm(self, tmp_path, grid, scan_file):
        """One shared ResultCache instance: counters stay coherent-ish and
        the structured counters() view always sums (hits + misses == probes)."""
        root = str(tmp_path / "cache")
        session = repro.session(grid=grid)
        key = session.cache_key(scan_file)
        run = session.run(scan_file, cache=False)
        cache = ResultCache(root)
        cache.put(key, run)

        def worker(_index):
            for _ in range(10):
                assert cache.get(key) is not None

        _run_threads(8, worker)
        counters = cache.counters()
        assert counters["hits"] == 80
        assert counters["misses"] == 0
        assert counters["probes"] == counters["hits"] + counters["misses"]
        assert counters["hit_rate"] == 1.0


# --------------------------------------------------------------------------- #
class TestCorruptRepairRace:
    def test_many_threads_repair_one_broken_entry(self, tmp_path, grid, scan_file):
        """N threads hit the same corrupt entry at once: all miss, none raise.

        The repair (unlink) races against itself across threads and cache
        instances; losing the race (file already gone) must be silent.
        """
        root = str(tmp_path / "cache")
        session = repro.session(grid=grid)
        key = session.cache_key(scan_file)
        run = session.run(scan_file, cache=False)
        ResultCache(root).put(key, run)
        with open(_entry_path(root), "r+b") as fh:
            fh.write(b"garbage!")  # clobber the magic: entry is unreadable
        caches = [ResultCache(root) for _ in range(8)]
        barrier = threading.Barrier(8)
        outcomes = [None] * 8

        def worker(index):
            barrier.wait()
            outcomes[index] = caches[index].get(key)

        _run_threads(8, worker)
        assert all(outcome is None for outcome in outcomes)  # corrupt != served
        assert sum(cache.n_repaired for cache in caches) >= 1
        assert glob.glob(os.path.join(root, "runs", "*", "*.h5lite")) == []
        # the root heals: a fresh store then hits again
        healer = ResultCache(root)
        healer.put(key, run)
        assert healer.get(key) is not None

    def test_repair_then_restore_race(self, tmp_path, grid, scan_file):
        """Readers racing a writer over a corrupt entry never see bad bytes."""
        root = str(tmp_path / "cache")
        session = repro.session(grid=grid)
        key = session.cache_key(scan_file)
        run = session.run(scan_file, cache=False)
        reference = run.result.data.tobytes()
        writer_cache = ResultCache(root)
        writer_cache.put(key, run)
        with open(_entry_path(root), "r+b") as fh:
            fh.write(b"garbage!")
        barrier = threading.Barrier(6)

        def worker(index):
            cache = ResultCache(root)
            barrier.wait()
            if index == 0:
                writer_cache.put(key, run)  # the recompute re-store
            else:
                for _ in range(5):
                    got = cache.get(key)
                    if got is not None:
                        assert got.result.data.tobytes() == reference

        _run_threads(6, worker)
        # the usual outcome: the re-store survives the concurrent repairs
        # (the repair re-checks file identity before unlinking).  In the
        # residual microsecond window the entry may be gone — but the root
        # must then be a clean miss, never a corrupt leftover.
        final = ResultCache(root).get(key)
        if final is None:
            assert glob.glob(os.path.join(root, "runs", "*", "*.h5lite")) == []
        else:
            assert final.result.data.tobytes() == reference


# --------------------------------------------------------------------------- #
class TestSharedRootAcrossDaemons:
    def test_second_daemon_warm_hits_the_first_daemons_store(
        self, tmp_path, grid, scan_file
    ):
        root = str(tmp_path / "cache")
        config = repro.session(grid=grid).config
        with start_in_thread(ServeSettings(port=0, workers=1, cache=root)) as first:
            ServeClient(base_url=first.base_url).submit_and_wait(
                scan_file, config=config
            )
            assert ServeClient(base_url=first.base_url).metrics()["jobs"]["computed"] == 1
        with start_in_thread(ServeSettings(port=0, workers=1, cache=root)) as second:
            client = ServeClient(base_url=second.base_url)
            accepted, _result = client.submit_and_wait(scan_file, config=config)
            assert accepted["dedup"] == "hit"
            jobs = client.metrics()["jobs"]
            assert jobs["computed"] == 0 and jobs["cache_hits"] == 1

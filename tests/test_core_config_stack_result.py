"""Unit tests for ReconstructionConfig, WireScanStack and DepthResolvedStack."""

import numpy as np
import pytest

from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.scan import WireScan
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError

from tests.helpers import make_tiny_stack


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 20)


class TestReconstructionConfig:
    def test_defaults(self, grid):
        config = ReconstructionConfig(grid=grid)
        assert config.backend == "vectorized"
        assert config.wire_edge is WireEdge.LEADING
        assert config.difference_mode is DifferenceMode.SIGNED
        assert config.layout == "flat1d"

    def test_with_backend_returns_copy(self, grid):
        config = ReconstructionConfig(grid=grid)
        other = config.with_backend("gpusim", layout="pointer3d")
        assert other.backend == "gpusim"
        assert other.layout == "pointer3d"
        assert config.backend == "vectorized"

    def test_with_overrides(self, grid):
        config = ReconstructionConfig(grid=grid).with_overrides(intensity_cutoff=1.5)
        assert config.intensity_cutoff == 1.5

    def test_invalid_layout(self, grid):
        with pytest.raises(ValidationError):
            ReconstructionConfig(grid=grid, layout="2d")

    def test_invalid_cutoff(self, grid):
        with pytest.raises(ValidationError):
            ReconstructionConfig(grid=grid, intensity_cutoff=-1.0)

    def test_invalid_rows_per_chunk(self, grid):
        with pytest.raises(ValidationError):
            ReconstructionConfig(grid=grid, rows_per_chunk=0)

    def test_invalid_workers(self, grid):
        with pytest.raises(ValidationError):
            ReconstructionConfig(grid=grid, n_workers=0)

    def test_grid_type_checked(self):
        with pytest.raises(ValidationError):
            ReconstructionConfig(grid="not a grid")


class TestWireScanStack:
    def test_tiny_stack_properties(self):
        stack = make_tiny_stack(n_rows=3, n_cols=2, n_positions=9)
        assert stack.shape == (9, 3, 2)
        assert stack.n_steps == 8
        assert stack.nbytes == 9 * 3 * 2 * 8
        assert stack.active_pixel_fraction == 1.0

    def test_differences_shape_and_values(self):
        stack = make_tiny_stack(n_positions=9)
        diffs = stack.differences()
        assert diffs.shape == (8, stack.n_rows, stack.n_cols)
        np.testing.assert_allclose(diffs, stack.images[:-1] - stack.images[1:])

    def test_pixel_mask_fraction(self):
        stack = make_tiny_stack(n_rows=4, n_cols=4)
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2] = True
        masked = stack.with_pixel_mask(mask)
        assert np.isclose(masked.active_pixel_fraction, 0.5)
        np.testing.assert_array_equal(masked.effective_mask(), mask)

    def test_effective_mask_default_all_true(self):
        stack = make_tiny_stack()
        assert stack.effective_mask().all()

    def test_row_slice_geometry_consistent(self):
        stack = make_tiny_stack(n_rows=6, n_cols=3, n_positions=9)
        sub = stack.row_slice(2, 5)
        assert sub.n_rows == 3
        # the sliced detector rows must be at the same lab coordinates as the
        # corresponding rows of the full detector
        np.testing.assert_allclose(sub.detector.row_yz(), stack.detector.row_yz()[2:5], atol=1e-9)
        np.testing.assert_allclose(sub.images, stack.images[:, 2:5, :])

    def test_row_slice_invalid(self):
        stack = make_tiny_stack(n_rows=4)
        with pytest.raises(ValidationError):
            stack.row_slice(3, 2)

    def test_shape_mismatch_rejected(self):
        detector = Detector(n_rows=4, n_cols=4)
        scan = WireScan.linear(n_points=5)
        with pytest.raises(ValidationError):
            WireScanStack(images=np.zeros((5, 3, 4)), scan=scan, detector=detector, beam=Beam())

    def test_positions_mismatch_rejected(self):
        detector = Detector(n_rows=3, n_cols=4)
        scan = WireScan.linear(n_points=5)
        with pytest.raises(ValidationError):
            WireScanStack(images=np.zeros((6, 3, 4)), scan=scan, detector=detector, beam=Beam())

    def test_mask_shape_rejected(self):
        stack = make_tiny_stack(n_rows=3, n_cols=2)
        with pytest.raises(ValidationError):
            stack.with_pixel_mask(np.ones((2, 2), dtype=bool))


class TestDepthResolvedStack:
    def test_basic_accessors(self, grid):
        data = np.zeros((20, 3, 4))
        data[5, 1, 2] = 7.0
        result = DepthResolvedStack(data=data, grid=grid)
        assert result.shape == (20, 3, 4)
        assert result.total_intensity() == 7.0
        np.testing.assert_allclose(result.depth_profile(1, 2)[5], 7.0)
        assert result.integrated_profile()[5] == 7.0

    def test_image_at_depth(self, grid):
        data = np.zeros((20, 2, 2))
        data[3] = 1.0
        result = DepthResolvedStack(data=data, grid=grid)
        depth = grid.index_to_depth(3)
        np.testing.assert_allclose(result.image_at_depth(depth), 1.0)
        with pytest.raises(ValidationError):
            result.image_at_depth(1e6)

    def test_dominant_depth_nan_for_dark_pixels(self, grid):
        data = np.zeros((20, 2, 2))
        data[4, 0, 0] = 3.0
        result = DepthResolvedStack(data=data, grid=grid)
        dominant = result.dominant_depth()
        assert np.isclose(dominant[0, 0], grid.index_to_depth(4))
        assert np.isnan(dominant[1, 1])

    def test_centroid_depth(self, grid):
        data = np.zeros((20, 1, 1))
        data[4, 0, 0] = 1.0
        data[6, 0, 0] = 1.0
        result = DepthResolvedStack(data=data, grid=grid)
        expected = 0.5 * (grid.index_to_depth(4) + grid.index_to_depth(6))
        assert np.isclose(result.centroid_depth()[0, 0], expected)

    def test_addition(self, grid):
        a = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid)
        b = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid)
        total = a + b
        assert total.total_intensity() == 2 * a.total_intensity()

    def test_addition_mismatched_grid_rejected(self, grid):
        a = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid)
        other_grid = DepthGrid.from_range(0.0, 50.0, 20)
        b = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=other_grid)
        # the error must name the differing grids, not just refuse
        with pytest.raises(ValidationError, match=r"different depth grids.*step=5\.0.*step=2\.5"):
            _ = a + b

    def test_addition_mismatched_shape_rejected(self, grid):
        a = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid)
        b = DepthResolvedStack(data=np.ones((20, 3, 3)), grid=grid)
        with pytest.raises(ValidationError, match=r"detector shapes.*\(20, 2, 2\).*\(20, 3, 3\)"):
            _ = a + b

    def test_sum_reduction(self, grid):
        stacks = [DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid) for _ in range(3)]
        total = sum(stacks)
        assert isinstance(total, DepthResolvedStack)
        assert total.total_intensity() == 3 * stacks[0].total_intensity()

    def test_sum_reduction_mismatched_grid_rejected(self, grid):
        other_grid = DepthGrid.from_range(0.0, 50.0, 20)
        stacks = [
            DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid),
            DepthResolvedStack(data=np.ones((20, 2, 2)), grid=other_grid),
        ]
        with pytest.raises(ValidationError, match="different depth grids"):
            sum(stacks)

    def test_radd_rejects_nonzero(self, grid):
        a = DepthResolvedStack(data=np.ones((20, 2, 2)), grid=grid)
        with pytest.raises(TypeError):
            _ = 1 + a

    def test_shape_validation(self, grid):
        with pytest.raises(ValidationError):
            DepthResolvedStack(data=np.zeros((19, 2, 2)), grid=grid)


class TestReconstructionReport:
    def test_transfer_fraction(self):
        report = ReconstructionReport(backend="x", compute_time=3.0, transfer_time=1.0)
        assert np.isclose(report.transfer_fraction, 0.25)

    def test_transfer_fraction_zero_when_no_time(self):
        assert ReconstructionReport(backend="x").transfer_fraction == 0.0

    def test_summary_contains_backend_and_notes(self):
        report = ReconstructionReport(backend="gpusim", notes=["hello"])
        text = report.summary()
        assert "gpusim" in text
        assert "hello" in text

    def test_to_dict_from_dict_round_trip(self):
        report = ReconstructionReport(
            backend="gpusim", wall_time=1.25, compute_time=0.75, transfer_time=0.5,
            simulated_device_time=1.0, h2d_bytes=1024, d2h_bytes=512, n_chunks=3,
            n_kernel_launches=3, n_threads_launched=300, n_active_pixels=42,
            n_steps=40, layout="pointer3d", notes=["plan[x]", "extra"],
        )
        rebuilt = ReconstructionReport.from_dict(report.to_dict())
        assert rebuilt == report
        # and through a JSON cycle (what the h5lite run record stores)
        import json

        rebuilt = ReconstructionReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown report field"):
            ReconstructionReport.from_dict({"backend": "x", "warp_factor": 9})

    def test_from_dict_requires_backend(self):
        with pytest.raises(ValidationError, match="backend"):
            ReconstructionReport.from_dict({"wall_time": 1.0})

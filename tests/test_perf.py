"""Unit tests for the perf subpackage (timers, metrics, sweeps, reporting, model runs)."""

import numpy as np
import pytest

from repro.perf.metrics import relative_change, speedup, summarize_ratio_range, time_ratio
from repro.perf.modelruns import (
    PAPER_FIG8_CPU_SECONDS,
    PAPER_FIG8_GPU_SECONDS,
    paper_scale_prediction,
    predict_figure8,
    predict_figure9,
)
from repro.perf.reporting import format_figure_report, format_series_table, records_to_series
from repro.perf.sweep import SweepRecord, run_backend_sweep
from repro.perf.timer import Timer, time_callable
from repro.synthetic.workloads import make_benchmark_workload


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(10000))
        with timer:
            sum(range(10000))
        assert timer.elapsed > 0
        assert len(timer.laps) == 2
        assert timer.min_lap <= timer.mean_lap

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0 and timer.laps == []

    def test_time_callable_returns_result(self):
        best, result = time_callable(lambda x: x * 2, 21, repeats=3)
        assert result == 42
        assert best >= 0

    def test_time_callable_validates_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestMetrics:
    def test_speedup_and_ratio_are_inverses(self):
        assert np.isclose(speedup(10.0, 2.5), 4.0)
        assert np.isclose(time_ratio(2.5, 10.0), 0.25)

    def test_paper_headline_ratio_range(self):
        pairs = [
            (PAPER_FIG8_GPU_SECONDS[k], PAPER_FIG8_CPU_SECONDS[k]) for k in PAPER_FIG8_CPU_SECONDS
        ]
        summary = summarize_ratio_range(pairs)
        # the big data sets reach the paper's quoted 25-30 % band
        assert summary["min"] < 0.30
        assert summary["max"] < 0.50
        assert summary["count"] == 4

    def test_relative_change(self):
        assert np.isclose(relative_change(10.0, 12.0), 0.2)
        with pytest.raises(ValueError):
            relative_change(0.0, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            time_ratio(1.0, 0.0)
        with pytest.raises(ValueError):
            summarize_ratio_range([])


class TestSweepAndReporting:
    @pytest.fixture(scope="class")
    def records(self):
        workload = make_benchmark_workload("2.1G", scale=1.0 / 65536.0, seed=9)
        return run_backend_sweep([workload], ["vectorized", "gpusim"])

    def test_sweep_produces_one_record_per_pair(self, records):
        assert len(records) == 2
        assert {r.backend for r in records} == {"vectorized", "gpusim"}
        for record in records:
            assert record.wall_time > 0
            assert record.n_elements > 0

    def test_records_to_series_pivot(self, records):
        series = records_to_series(records)
        assert "2.1G" in series
        assert set(series["2.1G"]) == {"vectorized", "gpusim"}

    def test_series_table_formatting(self, records):
        series = records_to_series(records)
        table = format_series_table(series, x_label="dataset")
        assert "dataset" in table
        assert "vectorized" in table and "gpusim" in table
        assert "2.1G" in table

    def test_figure_report_contains_title(self, records):
        report = format_figure_report("Fig. X test", records, extra_lines=["note line"])
        assert "Fig. X test" in report
        assert "note line" in report

    def test_missing_variant_renders_dash(self):
        record = SweepRecord(
            workload="w", backend="a", pixel_fraction=1.0, data_bytes=1, n_elements=1,
            wall_time=1.0, simulated_time=0.0, transfer_time=0.0, compute_time=1.0,
        )
        table = format_series_table({"w": {"a": 1.0}}, x_label="x", variants=["a", "b"])
        assert "-" in table
        assert record.as_dict()["backend"] == "a"

    def test_sweep_config_overrides(self):
        workload = make_benchmark_workload("2.1G", scale=1.0 / 65536.0, seed=9)
        records = run_backend_sweep(
            [workload], ["gpusim"], config_overrides={"gpusim": {"layout": "pointer3d"}}
        )
        assert records[0].layout == "pointer3d"

    def test_sweep_validates_repeats(self):
        with pytest.raises(ValueError):
            run_backend_sweep([], ["vectorized"], repeats=0)


class TestPaperScaleModel:
    def test_gpu_faster_than_cpu_at_paper_scale(self):
        prediction = paper_scale_prediction("5.2G", 5.2 * 1024**3)
        assert prediction.gpu_seconds < prediction.cpu_seconds
        assert 0.0 < prediction.gpu_over_cpu < 1.0

    def test_figure8_series_monotonic_in_size(self):
        series = predict_figure8()
        cpu_times = [series[k].cpu_seconds for k in ("2.1G", "2.7G", "3.6G", "5.2G")]
        gpu_times = [series[k].gpu_seconds for k in ("2.1G", "2.7G", "3.6G", "5.2G")]
        assert all(np.diff(cpu_times) > 0)
        assert all(np.diff(gpu_times) > 0)

    def test_figure8_gpu_scales_flatter_than_cpu(self):
        series = predict_figure8()
        cpu_growth = series["5.2G"].cpu_seconds / series["2.1G"].cpu_seconds
        gpu_growth = series["5.2G"].gpu_seconds / series["2.1G"].gpu_seconds
        assert gpu_growth <= cpu_growth + 1e-9

    def test_figure8_ratio_in_paper_band(self):
        series = predict_figure8()
        for prediction in series.values():
            assert 0.1 <= prediction.gpu_over_cpu <= 0.5

    def test_figure9_cpu_grows_with_pixel_fraction(self):
        series = predict_figure9()
        assert series["25%"].cpu_seconds < series["50%"].cpu_seconds < series["100%"].cpu_seconds
        assert series["25%"].gpu_seconds <= series["100%"].gpu_seconds

    def test_cpu_magnitudes_comparable_to_paper(self):
        # order-of-magnitude sanity: modelled CPU time within 3x of Fig. 8
        series = predict_figure8()
        for label, paper_seconds in PAPER_FIG8_CPU_SECONDS.items():
            modelled = series[label].cpu_seconds
            assert paper_seconds / 3.0 <= modelled <= paper_seconds * 3.0

"""Unit tests for the depth grid and the pixel->depth mapping."""

import math

import numpy as np
import pytest

from repro.core.depth_grid import DepthGrid
from repro.core.depth_mapping import (
    critical_wire_z_for_depth,
    depth_to_index,
    index_to_beam_depth,
    pixel_xyz_to_depth,
    pixel_yz_to_depth,
    pixel_yz_to_depth_scalar,
)
from repro.geometry.beam import Beam
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError


class TestDepthGrid:
    def test_from_range(self):
        grid = DepthGrid.from_range(0.0, 100.0, 50)
        assert grid.n_bins == 50
        assert np.isclose(grid.step, 2.0)
        assert np.isclose(grid.stop, 100.0)

    def test_edges_and_centers(self):
        grid = DepthGrid(start=10.0, step=5.0, n_bins=4)
        np.testing.assert_allclose(grid.edges, [10, 15, 20, 25, 30])
        np.testing.assert_allclose(grid.centers, [12.5, 17.5, 22.5, 27.5])

    def test_index_depth_roundtrip(self):
        grid = DepthGrid(start=0.0, step=2.0, n_bins=10)
        for index in range(10):
            depth = grid.index_to_depth(index)
            assert grid.depth_to_index(depth) == index

    def test_index_to_depth_matches_kernel_formula(self):
        grid = DepthGrid(start=-5.0, step=0.5, n_bins=30)
        np.testing.assert_allclose(
            grid.index_to_depth(np.arange(5)),
            index_to_beam_depth(np.arange(5), -5.0, 0.5),
        )

    def test_contains(self):
        grid = DepthGrid(start=0.0, step=1.0, n_bins=5)
        assert grid.contains(0.0)
        assert grid.contains(4.99)
        assert not grid.contains(5.0)
        assert not grid.contains(-0.01)

    def test_clip_indices(self):
        grid = DepthGrid(start=0.0, step=1.0, n_bins=5)
        np.testing.assert_array_equal(grid.clip_indices([-3, 2, 9]), [0, 2, 4])

    def test_len(self):
        assert len(DepthGrid(0.0, 1.0, 7)) == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            DepthGrid(0.0, -1.0, 5)
        with pytest.raises(ValidationError):
            DepthGrid(0.0, 1.0, 0)
        with pytest.raises(ValidationError):
            DepthGrid.from_range(10.0, 0.0, 5)

    def test_depth_to_index_helper(self):
        np.testing.assert_array_equal(depth_to_index([0.1, 3.9], 0.0, 1.0), [0, 3])


class TestPixelToDepth:
    PIXEL_Y = 510_000.0
    WIRE_Y = 1_500.0
    RADIUS = 26.0

    def test_scalar_and_vectorized_agree(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            pixel_z = rng.uniform(-30_000, 30_000)
            wire_z = rng.uniform(-300, 500)
            for edge in (WireEdge.LEADING, WireEdge.TRAILING):
                scalar = pixel_yz_to_depth_scalar(self.PIXEL_Y, pixel_z, self.WIRE_Y, wire_z, self.RADIUS, edge)
                vector = float(pixel_yz_to_depth(self.PIXEL_Y, pixel_z, self.WIRE_Y, wire_z, self.RADIUS, edge))
                assert np.isclose(scalar, vector, rtol=1e-12, atol=1e-9)

    def test_leading_edge_is_deeper_than_trailing(self):
        leading = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 50.0, self.RADIUS, WireEdge.LEADING)
        trailing = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 50.0, self.RADIUS, WireEdge.TRAILING)
        assert leading > trailing

    def test_edges_straddle_zero_radius_limit(self):
        # with a vanishingly small radius both edges converge to the same depth
        centre = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 50.0, 1e-9, WireEdge.LEADING)
        leading = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 50.0, self.RADIUS, WireEdge.LEADING)
        trailing = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 50.0, self.RADIUS, WireEdge.TRAILING)
        assert trailing < centre < leading

    def test_zero_radius_matches_straight_line_geometry(self):
        pixel_z, wire_z = 10_000.0, 50.0
        depth = pixel_yz_to_depth_scalar(self.PIXEL_Y, pixel_z, self.WIRE_Y, wire_z, 1e-12, WireEdge.LEADING)
        # straight line from the pixel through the wire centre to y = 0
        expected = pixel_z + (wire_z - pixel_z) * self.PIXEL_Y / (self.PIXEL_Y - self.WIRE_Y)
        assert np.isclose(depth, expected, atol=1e-3)

    def test_depth_moves_with_wire(self):
        # moving the wire towards +z moves the critical depth towards +z
        d1 = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 0.0, self.RADIUS, WireEdge.LEADING)
        d2 = pixel_yz_to_depth_scalar(self.PIXEL_Y, 10_000.0, self.WIRE_Y, 20.0, self.RADIUS, WireEdge.LEADING)
        assert d2 > d1

    def test_pixel_inside_wire_returns_nan(self):
        assert math.isnan(
            pixel_yz_to_depth_scalar(self.WIRE_Y, 0.0, self.WIRE_Y, 10.0, self.RADIUS, WireEdge.LEADING)
        )

    def test_vectorized_broadcasting(self):
        pixel_z = np.linspace(-5_000, 5_000, 7)[:, None]
        wire_z = np.linspace(-100, 100, 5)[None, :]
        depths = pixel_yz_to_depth(self.PIXEL_Y, pixel_z, self.WIRE_Y, wire_z, self.RADIUS, WireEdge.LEADING)
        assert depths.shape == (7, 5)
        assert np.all(np.isfinite(depths))

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValidationError):
            pixel_yz_to_depth(self.PIXEL_Y, 0.0, self.WIRE_Y, 0.0, -1.0)

    def test_xyz_wrapper_ignores_x(self):
        pixel_a = np.array([0.0, self.PIXEL_Y, 10_000.0])
        pixel_b = np.array([123_456.0, self.PIXEL_Y, 10_000.0])
        wire = np.array([self.WIRE_Y, 50.0])
        d_a = pixel_xyz_to_depth(pixel_a, wire, self.RADIUS, WireEdge.LEADING)
        d_b = pixel_xyz_to_depth(pixel_b, wire, self.RADIUS, WireEdge.LEADING)
        assert np.isclose(float(d_a), float(d_b))

    def test_xyz_wrapper_rejects_noncanonical_beam(self):
        with pytest.raises(ValidationError):
            pixel_xyz_to_depth(
                np.array([0.0, self.PIXEL_Y, 0.0]),
                np.array([self.WIRE_Y, 0.0]),
                self.RADIUS,
                WireEdge.LEADING,
                beam=Beam(direction=(0.0, 1.0, 0.0)),
            )

    def test_inverse_mapping_roundtrip(self):
        # pixel_yz_to_depth and critical_wire_z_for_depth are mutual inverses
        rng = np.random.default_rng(3)
        for _ in range(30):
            pixel_z = rng.uniform(-20_000, 20_000)
            depth = rng.uniform(0.0, 150.0)
            for edge in (WireEdge.LEADING, WireEdge.TRAILING):
                wire_z = float(
                    critical_wire_z_for_depth(depth, self.PIXEL_Y, pixel_z, self.WIRE_Y, self.RADIUS, edge)
                )
                recovered = pixel_yz_to_depth_scalar(self.PIXEL_Y, pixel_z, self.WIRE_Y, wire_z, self.RADIUS, edge)
                assert np.isclose(recovered, depth, atol=1e-6)

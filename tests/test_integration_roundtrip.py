"""End-to-end integration tests: forward model → reconstruction → ground truth.

These are the strongest correctness checks in the suite: the forward model
computes images with the geometric occlusion test, the reconstruction
recovers depth with the tangent-depth mapping, and the two share no code
path — agreement therefore validates both, plus the whole stack of geometry,
kernels, chunking and IO in between.
"""

import numpy as np
import pytest

from repro.core.config import DifferenceMode
from repro.core.depth_grid import DepthGrid
from repro.core.session import session
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.wire import WireEdge
from repro.synthetic.forward_model import design_scan_for_depth_range, simulate_wire_scan
from repro.synthetic.noise import apply_poisson
from repro.synthetic.sample import DepthSourceField
from repro.synthetic.workloads import make_grain_sample_stack


class TestPointSourceRecovery:
    @pytest.mark.parametrize("true_depth", [15.0, 40.0, 85.0])
    def test_point_source_depth_recovered(self, true_depth):
        detector = Detector(n_rows=8, n_cols=4, pixel_size=200.0, distance=510_000.0)
        grid = DepthGrid.from_range(0.0, 100.0, 50)
        depth_samples = np.linspace(0.0, 100.0, 200, endpoint=False) + 0.25
        source = DepthSourceField.point_source(detector, true_depth, depth_samples, intensity=800.0)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=161)
        stack = simulate_wire_scan(source, scan, detector, Beam())

        result = session(grid=grid, backend="vectorized").run(stack).result
        peak_depth = grid.index_to_depth(int(np.argmax(result.integrated_profile())))
        assert abs(peak_depth - true_depth) <= 2.0 * grid.step

        centroid = result.centroid_depth()
        finite = np.isfinite(centroid)
        assert finite.any()
        assert np.median(np.abs(centroid[finite] - true_depth)) <= 3.0 * grid.step

    def test_two_sources_resolved(self):
        detector = Detector(n_rows=6, n_cols=3, pixel_size=200.0, distance=510_000.0)
        grid = DepthGrid.from_range(0.0, 100.0, 50)
        depth_samples = np.linspace(0.0, 100.0, 200, endpoint=False) + 0.25
        source_a = DepthSourceField.point_source(detector, 25.0, depth_samples, intensity=500.0)
        source_b = DepthSourceField.point_source(detector, 70.0, depth_samples, intensity=500.0)
        combined = DepthSourceField(
            depth_samples=depth_samples, source=source_a.source + source_b.source
        )
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=201)
        stack = simulate_wire_scan(combined, scan, detector, Beam())
        result = session(grid=grid).run(stack).result
        profile = result.integrated_profile()

        # both peaks present, separated by a clear dip
        idx_a = int(grid.depth_to_index(25.0))
        idx_b = int(grid.depth_to_index(70.0))
        idx_mid = int(grid.depth_to_index(47.5))
        window = 3
        peak_a = profile[idx_a - window:idx_a + window + 1].max()
        peak_b = profile[idx_b - window:idx_b + window + 1].max()
        valley = profile[idx_mid - window:idx_mid + window + 1].max()
        assert peak_a > 3 * max(valley, 1e-12)
        assert peak_b > 3 * max(valley, 1e-12)

    def test_intensity_approximately_conserved(self):
        detector = Detector(n_rows=6, n_cols=3, pixel_size=200.0, distance=510_000.0)
        grid = DepthGrid.from_range(0.0, 100.0, 50)
        depth_samples = np.linspace(0.0, 100.0, 200, endpoint=False) + 0.25
        source = DepthSourceField.point_source(detector, 50.0, depth_samples, intensity=300.0)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=161)
        stack = simulate_wire_scan(source, scan, detector, Beam())
        result = session(grid=grid).run(stack).result
        # every pixel's depth-integrated reconstructed intensity should be
        # close to what the pixel records without the wire
        recon_total = result.data.sum(axis=0)
        true_total = source.total_image()
        np.testing.assert_allclose(recon_total, true_total, rtol=0.15)


class TestRobustness:
    def test_rectified_mode_close_to_signed_in_single_edge_regime(self, session_point_stack):
        stack, _ = session_point_stack
        grid = DepthGrid.from_range(0.0, 100.0, 40)
        signed = session(grid=grid, difference_mode=DifferenceMode.SIGNED).run(stack).result
        rectified = session(grid=grid, difference_mode=DifferenceMode.RECTIFIED).run(stack).result
        # in the single-edge regime the signed differences are non-negative,
        # so rectification changes (almost) nothing
        assert rectified.total_intensity() <= signed.total_intensity() + 1e-9
        np.testing.assert_allclose(rectified.data, signed.data, rtol=1e-6, atol=1e-6)

    def test_poisson_noise_degrades_gracefully(self, session_point_stack):
        stack, _source = session_point_stack
        grid = DepthGrid.from_range(0.0, 100.0, 40)
        rng = np.random.default_rng(0)
        noisy = apply_poisson(stack, rng, scale=5.0)
        clean_result = session(grid=grid).run(stack).result
        noisy_result = session(grid=grid).run(noisy).result
        clean_peak = grid.index_to_depth(int(np.argmax(clean_result.integrated_profile())))
        noisy_peak = grid.index_to_depth(int(np.argmax(noisy_result.integrated_profile())))
        assert abs(noisy_peak - clean_peak) <= 3.0 * grid.step

    def test_intensity_cutoff_reduces_work_but_keeps_peak(self, session_point_stack):
        stack, _ = session_point_stack
        grid = DepthGrid.from_range(0.0, 100.0, 40)
        full_run = session(grid=grid).run(stack)
        cut_run = session(grid=grid, intensity_cutoff=1.0).run(stack)
        full, full_report = full_run.result, full_run.report
        cut, cut_report = cut_run.result, cut_run.report
        assert cut_report.n_active_pixels <= full_report.n_active_pixels
        full_peak = np.argmax(full.integrated_profile())
        cut_peak = np.argmax(cut.integrated_profile())
        assert abs(int(full_peak) - int(cut_peak)) <= 2

    def test_trailing_edge_scan_recovers_depth(self):
        # scan designed for the trailing edge: difference sign flips, and the
        # reconstruction must be told which edge to use
        detector = Detector(n_rows=6, n_cols=3, pixel_size=200.0, distance=510_000.0)
        grid = DepthGrid.from_range(0.0, 100.0, 50)
        depth_samples = np.linspace(0.0, 100.0, 200, endpoint=False) + 0.25
        source = DepthSourceField.point_source(detector, 55.0, depth_samples, intensity=400.0)

        # start the wire so it already blocks everything, then move it until
        # the trailing edge has released every ray
        from repro.core.depth_mapping import critical_wire_z_for_depth
        from repro.geometry.scan import WireScan
        from repro.geometry.wire import Wire

        rows = detector.row_yz()
        wire = Wire(radius=700.0)
        corners = [
            critical_wire_z_for_depth(d, rows[:, 0], rows[:, 1], 1_500.0, wire.radius, edge=-1)
            for d in (0.0, 100.0)
        ]
        z_values = np.concatenate(corners)
        scan = WireScan.linear(
            wire=wire, n_points=161, height=1_500.0,
            z_start=float(z_values.min()) - 25.0, z_stop=float(z_values.max()) + 25.0,
        )
        stack = simulate_wire_scan(source, scan, detector, Beam())

        result = session(grid=grid, wire_edge=WireEdge.TRAILING).run(stack).result
        peak_depth = grid.index_to_depth(int(np.argmax(result.integrated_profile())))
        assert abs(peak_depth - 55.0) <= 2.5 * grid.step


class TestGrainSampleRecovery:
    def test_grain_centroid_depths_recovered(self):
        stack, source, sample = make_grain_sample_stack(
            n_rows=24, n_cols=24, n_grains=2, n_positions=161, seed=5, depth_range=(0.0, 120.0)
        )
        grid = DepthGrid.from_range(0.0, 120.0, 60)
        result = session(grid=grid, backend="vectorized").run(stack).result

        truth = source.true_centroid_depth()
        recon = result.centroid_depth()
        bright = source.total_image() > 0.1 * source.total_image().max()
        mask = bright & np.isfinite(truth) & np.isfinite(recon)
        assert mask.sum() > 3
        errors = np.abs(recon[mask] - truth[mask])
        assert np.median(errors) < 5.0 * grid.step

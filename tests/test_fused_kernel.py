"""Property-style equivalence tests for the fused single-pass kernel.

The fused kernel (``depth_resolve_chunk_fused``) replaces the two-pass
vectorised path — materialise ``signed_differences()``, then distribute — and
its load-bearing contract is **bitwise identity** with the scalar reference
loop: same per-bin weights in the same operation order, same accumulation
order into every output slot, results independent of the ``row_block`` /
``element_batch`` temporaries.  These tests pin that contract across odd
shapes, degenerate trapezoids, masks, cutoffs, both wire edges, both
difference modes, and every registered backend (chunked and streamed).
"""

import numpy as np
import pytest

from repro.core.backends import get_backend
from repro.core.backends.base import build_kernel_context
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.kernels import (
    depth_resolve_chunk_fused,
    depth_resolve_chunk_scalar,
    depth_resolve_chunk_vectorized,
)
from repro.core.workerpool import shutdown_shared_pool, shutdown_shared_thread_pool
from repro.geometry.wire import WireEdge
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_point_source_stack
from tests.helpers import make_tiny_stack

#: Backends whose output must be bitwise identical to the scalar reference.
EXACT_BACKENDS = ("cpu_reference", "vectorized", "multiprocess", "threaded")


def _noisy_stack(n_rows=7, n_cols=5, n_positions=17, masked=False, seed=11):
    stack = make_tiny_stack(n_rows=n_rows, n_cols=n_cols, n_positions=n_positions)
    rng = np.random.default_rng(seed)
    stack.images = stack.images + rng.random(stack.images.shape) * 5.0
    if masked:
        stack.pixel_mask = rng.random((n_rows, n_cols)) > 0.3
    return stack


def _context(stack, **config_overrides):
    grid = config_overrides.pop("grid", DepthGrid.from_range(0.0, 100.0, 25))
    config = ReconstructionConfig(grid=grid, **config_overrides)
    return build_kernel_context(stack, config)


def _assert_fused_bitwise(ctx, **fused_kwargs):
    shape = (ctx.grid.n_bins, ctx.n_rows, ctx.n_cols)
    out_scalar = np.zeros(shape)
    out_fused = np.zeros(shape)
    total_scalar = depth_resolve_chunk_scalar(ctx, out_scalar)
    total_fused = depth_resolve_chunk_fused(ctx, out_fused, **fused_kwargs)
    assert np.array_equal(out_scalar, out_fused), (
        f"fused kernel diverged from scalar reference: "
        f"{np.count_nonzero(out_scalar != out_fused)} differing slot(s)"
    )
    # the totals are reductions in different orders, so allclose not bitwise
    assert np.isclose(total_scalar, total_fused, rtol=1e-12)
    return out_scalar


class TestFusedVsScalar:
    def test_point_source_bitwise(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        _assert_fused_bitwise(_context(stack, grid=depth_grid))

    @pytest.mark.parametrize(
        "n_rows,n_cols,n_positions",
        [(1, 1, 3), (1, 7, 5), (7, 1, 5), (3, 5, 2), (5, 3, 17)],
    )
    def test_odd_shapes_bitwise(self, n_rows, n_cols, n_positions):
        stack = _noisy_stack(n_rows=n_rows, n_cols=n_cols, n_positions=n_positions)
        _assert_fused_bitwise(_context(stack))

    @pytest.mark.parametrize("wire_edge", [WireEdge.LEADING, WireEdge.TRAILING])
    @pytest.mark.parametrize(
        "difference_mode", [DifferenceMode.SIGNED, DifferenceMode.RECTIFIED]
    )
    def test_edges_and_modes_bitwise(self, wire_edge, difference_mode):
        stack = _noisy_stack(masked=True)
        ctx = _context(stack, wire_edge=wire_edge, difference_mode=difference_mode)
        _assert_fused_bitwise(ctx)

    def test_mask_and_cutoff_bitwise(self):
        stack = _noisy_stack(masked=True)
        ctx = _context(stack)
        ctx.intensity_cutoff = float(np.median(np.abs(ctx.signed_differences())))
        _assert_fused_bitwise(ctx)

    def test_degenerate_trapezoids_bitwise(self):
        """Zero-motion wire steps collapse trapezoids to zero area.

        Both paths must skip exactly the same degenerate (step, row) pairs —
        a divide-by-area in the fused path would surface here as NaN.
        """
        stack = _noisy_stack(n_positions=9)
        ctx = _context(stack)
        positions = ctx.wire_positions_yz.copy()
        positions[3] = positions[2]  # a step the wire did not move
        positions[7] = positions[6]
        ctx.wire_positions_yz = positions
        out = _assert_fused_bitwise(ctx)
        assert np.all(np.isfinite(out))

    def test_all_inactive_elements(self):
        stack = _noisy_stack()
        ctx = _context(stack)
        ctx.intensity_cutoff = 1e12
        shape = (ctx.grid.n_bins, ctx.n_rows, ctx.n_cols)
        out = np.zeros(shape)
        assert depth_resolve_chunk_fused(ctx, out) == 0.0
        assert out.sum() == 0.0

    def test_row_block_and_batch_do_not_change_result(self):
        """row_block / element_batch bound temporaries, never the answer."""
        stack = _noisy_stack(n_rows=11, masked=True)
        ctx = _context(stack)
        reference = _assert_fused_bitwise(ctx)
        for row_block, element_batch in [(1, 3), (2, 7), (4, 1), (100, 1 << 20)]:
            out = np.zeros_like(reference)
            depth_resolve_chunk_fused(
                ctx, out, element_batch=element_batch, row_block=row_block
            )
            assert np.array_equal(out, reference), (
                f"result depends on row_block={row_block}, "
                f"element_batch={element_batch}"
            )

    def test_fused_matches_unfused_vectorized(self):
        """The retired two-pass kernel agrees too (allclose: op order differs)."""
        stack = _noisy_stack(masked=True)
        ctx = _context(stack)
        shape = (ctx.grid.n_bins, ctx.n_rows, ctx.n_cols)
        out_fused = np.zeros(shape)
        out_unfused = np.zeros(shape)
        depth_resolve_chunk_fused(ctx, out_fused)
        depth_resolve_chunk_vectorized(ctx, out_unfused)
        np.testing.assert_allclose(out_unfused, out_fused, rtol=1e-12, atol=1e-15)


class TestBackendsBitwise:
    @pytest.fixture(scope="class")
    def reference_run(self):
        stack, _ = make_point_source_stack(depth=40.0, n_rows=6, n_cols=5, n_positions=41)
        grid = DepthGrid.from_range(0.0, 100.0, 25)
        config = ReconstructionConfig(grid=grid, backend="cpu_reference")
        result, _report = get_backend("cpu_reference").reconstruct(stack, config)
        return stack, grid, result

    @pytest.mark.parametrize("backend_name", EXACT_BACKENDS[1:])
    def test_backend_bitwise_identical(self, reference_run, backend_name):
        stack, grid, reference = reference_run
        config = ReconstructionConfig(grid=grid, backend=backend_name, n_workers=2)
        result, _report = get_backend(backend_name).reconstruct(stack, config)
        assert np.array_equal(reference.data, result.data)
        shutdown_shared_pool()
        shutdown_shared_thread_pool()

    @pytest.mark.parametrize("backend_name", EXACT_BACKENDS[1:])
    def test_backend_bitwise_identical_chunked(self, reference_run, backend_name):
        stack, grid, reference = reference_run
        config = ReconstructionConfig(
            grid=grid, backend=backend_name, n_workers=2, rows_per_chunk=2
        )
        result, _report = get_backend(backend_name).reconstruct(stack, config)
        assert np.array_equal(reference.data, result.data)
        shutdown_shared_pool()
        shutdown_shared_thread_pool()

    def test_backend_bitwise_identical_streamed(self, reference_run, tmp_path):
        stack, grid, reference = reference_run
        path = str(tmp_path / "scan.h5lite")
        save_wire_scan(path, stack)
        from repro.core.engine import execute_backend
        from repro.io.streaming import StreamingWireScanSource

        config = ReconstructionConfig(
            grid=grid, backend="vectorized", rows_per_chunk=2
        )
        source = StreamingWireScanSource(path)
        result, _report = execute_backend(source, config)
        assert source.accounting()["max_resident_rows"] == 2  # truly streamed
        assert np.array_equal(reference.data, result.data)

    def test_gpusim_allclose(self, reference_run):
        stack, grid, reference = reference_run
        config = ReconstructionConfig(grid=grid, backend="gpusim")
        result, _report = get_backend("gpusim").reconstruct(stack, config)
        np.testing.assert_allclose(reference.data, result.data, rtol=1e-9, atol=1e-12)

"""Tests for the ``repro.open()`` / ``repro.session()`` front door.

Source polymorphism, fluent-session immutability, run observability
(RunResult provenance), batch scheduling through ``run_many`` — and the
acceptance guarantee that the new front door reproduces the deprecated
entry points bitwise-identically across all four backends, in-memory,
streamed and batched.
"""

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.session import BatchRunResult, RunResult, Session, session
from repro.core.source import BatchSource, FileSource, StackSource, open as open_source
from repro.io.image_stack import save_wire_scan
from repro.utils.validation import ValidationError
from tests.helpers import make_tiny_stack

ALL_BACKENDS = ("cpu_reference", "vectorized", "gpusim", "multiprocess")


def _noisy_stack(n_rows=6, n_cols=4, n_positions=13, seed=3, masked=False):
    stack = make_tiny_stack(n_rows=n_rows, n_cols=n_cols, n_positions=n_positions)
    rng = np.random.default_rng(seed)
    stack.images = stack.images + rng.random(stack.images.shape) * 5.0
    if masked:
        stack.pixel_mask = rng.random((n_rows, n_cols)) > 0.3
    return stack


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 15)


@pytest.fixture()
def scan_dir(tmp_path):
    """Three scan files in one directory (plus a decoy non-h5lite file)."""
    paths = []
    for index in range(3):
        path = tmp_path / f"scan_{index}.h5lite"
        save_wire_scan(path, _noisy_stack(seed=40 + index))
        paths.append(str(path))
    (tmp_path / "notes.txt").write_text("not a scan")
    return tmp_path, paths


# --------------------------------------------------------------------------- #
class TestOpenPolymorphism:
    def test_open_stack(self):
        stack = _noisy_stack()
        source = repro.open(stack)
        assert isinstance(source, StackSource)
        assert not source.is_batch
        assert source.identity()["kind"] == "stack"
        assert source.identity()["shape"] == list(stack.shape)

    def test_open_source_passthrough(self):
        source = repro.open(_noisy_stack())
        assert repro.open(source) is source

    def test_open_file(self, scan_dir):
        _root, paths = scan_dir
        source = repro.open(paths[0])
        assert isinstance(source, FileSource)
        identity = source.identity()
        assert identity["kind"] == "file"
        assert identity["path"] == paths[0]
        assert identity["bytes"] > 0

    def test_open_pathlike(self, scan_dir):
        root, paths = scan_dir
        source = repro.open(root / "scan_0.h5lite")
        assert isinstance(source, FileSource)
        assert source.path == paths[0]

    def test_open_glob(self, scan_dir):
        root, paths = scan_dir
        source = repro.open(str(root / "scan_*.h5lite"))
        assert isinstance(source, BatchSource)
        assert source.is_batch
        assert [item.path for item in source.items()] == paths

    def test_open_directory(self, scan_dir):
        root, paths = scan_dir
        source = repro.open(str(root))
        assert isinstance(source, BatchSource)
        # only the .h5lite files, sorted; the decoy .txt is ignored
        assert [item.path for item in source.items()] == paths

    def test_open_list_flattens(self, scan_dir):
        root, paths = scan_dir
        stack = _noisy_stack()
        source = repro.open([stack, str(root / "scan_*.h5lite")])
        assert source.is_batch
        kinds = [item.kind for item in source.items()]
        assert kinds == ["stack", "file", "file", "file"]

    def test_open_ndarray_with_geometry(self, grid):
        stack = _noisy_stack()
        source = repro.open(
            stack.images, scan=stack.scan, detector=stack.detector, beam=stack.beam
        )
        assert isinstance(source, StackSource)
        run = session(grid=grid).run(source)
        reference = session(grid=grid).run(stack)
        np.testing.assert_array_equal(run.result.data, reference.result.data)

    def test_open_ndarray_without_geometry_rejected(self):
        with pytest.raises(ValidationError, match="scan= and detector="):
            repro.open(np.zeros((3, 2, 2)))

    def test_open_empty_glob_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="matched no files"):
            repro.open(str(tmp_path / "*.h5lite"))

    def test_open_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="contains no .h5lite"):
            repro.open(str(tmp_path))

    def test_open_unsupported_type_rejected(self):
        with pytest.raises(ValidationError, match="cannot open"):
            repro.open(42)

    def test_existing_file_with_glob_chars_opened_literally(self, tmp_path):
        """A real file named scan[1].h5lite must not be glob-interpreted."""
        literal = tmp_path / "scan[1].h5lite"
        decoy = tmp_path / "scan1.h5lite"  # what the [1] character class would match
        save_wire_scan(literal, _noisy_stack(seed=1))
        save_wire_scan(decoy, _noisy_stack(seed=2))
        source = repro.open(str(literal))
        assert isinstance(source, FileSource)
        assert source.path == str(literal)

    def test_open_list_of_ndarrays_forwards_geometry(self, grid):
        stack = _noisy_stack()
        source = repro.open(
            [stack.images, stack.images], scan=stack.scan, detector=stack.detector
        )
        assert source.is_batch and len(source.items()) == 2
        batch = session(grid=grid).run_many(source)
        assert batch.n_ok == 2

    def test_open_rejects_geometry_keywords_on_non_ndarray(self, scan_dir):
        _root, paths = scan_dir
        mask = np.ones((6, 4), dtype=bool)
        with pytest.raises(ValidationError, match="ndarray inputs only"):
            repro.open(paths[0], pixel_mask=mask)
        with pytest.raises(ValidationError, match="ndarray inputs only"):
            repro.open(_noisy_stack(), pixel_mask=mask)

    def test_batch_source_has_no_single_chunk_source(self, scan_dir, grid):
        root, _paths = scan_dir
        source = repro.open(str(root))
        with pytest.raises(ValidationError, match="run_many"):
            source.chunk_source(ReconstructionConfig(grid=grid))


# --------------------------------------------------------------------------- #
class TestSessionFluency:
    def test_builder_is_immutable(self, grid):
        base = session(grid=grid)
        gpu = base.on("gpusim", layout="pointer3d")
        streamed = gpu.stream(rows_per_chunk=4)
        assert base.config.backend == "vectorized"
        assert gpu.config.backend == "gpusim" and gpu.config.layout == "pointer3d"
        assert not gpu.config.streaming
        assert streamed.config.streaming and streamed.config.rows_per_chunk == 4
        assert streamed.in_memory().config.streaming is False
        assert isinstance(streamed, Session)

    def test_configure_overrides(self, grid):
        sess = session(grid=grid).configure(intensity_cutoff=2.0, n_workers=3)
        assert sess.config.intensity_cutoff == 2.0
        assert sess.config.n_workers == 3

    def test_session_requires_grid_or_config(self):
        with pytest.raises(ValidationError):
            session()

    def test_session_rejects_config_plus_overrides(self, grid):
        config = ReconstructionConfig(grid=grid)
        with pytest.raises(ValidationError):
            session(config=config, backend="gpusim")

    def test_properties(self, grid):
        sess = session(grid=grid).on("gpusim")
        assert sess.grid is grid
        assert sess.backend_name == "gpusim"

    def test_run_rejects_batch(self, scan_dir, grid):
        root, _paths = scan_dir
        with pytest.raises(ValidationError, match="run_many"):
            session(grid=grid).run(str(root))

    def test_fluent_chain_end_to_end(self, scan_dir, grid):
        _root, paths = scan_dir
        run = (
            session(grid=grid)
            .on("gpusim", layout="pointer3d")
            .stream(rows_per_chunk=2)
            .run(repro.open(paths[0]))
        )
        assert run.report.backend == "gpusim"
        assert run.report.layout == "pointer3d"
        assert any("streamed from disk" in note for note in run.report.notes)


# --------------------------------------------------------------------------- #
class TestRunResultObservability:
    def test_provenance_contents(self, grid):
        stack = _noisy_stack()
        run = session(grid=grid).on("gpusim").run(stack)
        record = run.provenance()
        assert record["repro_version"] == repro.__version__
        assert record["backend"] == "gpusim"
        assert record["config"] == run.config.to_dict()
        assert record["source"]["kind"] == "stack"
        assert record["plan"].startswith("plan[")
        assert record["timings"]["wall_time"] == run.report.wall_time
        assert record["counters"]["n_chunks"] == run.report.n_chunks
        assert record["created_unix"] > 0

    def test_to_json_round_trips(self, grid):
        run = session(grid=grid).run(_noisy_stack())
        decoded = json.loads(run.to_json())
        assert decoded["config"]["backend"] == "vectorized"
        restored = ReconstructionConfig.from_dict(decoded["config"])
        assert restored == run.config

    def test_config_snapshot_rebuilds_equivalent_run(self, grid):
        stack = _noisy_stack()
        first = session(grid=grid).on("gpusim").run(stack)
        snapshot = json.loads(first.to_json())["config"]
        replay = session(config=ReconstructionConfig.from_dict(snapshot)).run(stack)
        np.testing.assert_array_equal(replay.result.data, first.result.data)

    def test_report_always_carried(self, grid):
        run = session(grid=grid).run(_noisy_stack())
        assert isinstance(run, RunResult)
        assert run.report is not None
        assert run.wall_time == run.report.wall_time
        assert run.data is run.result.data

    def test_save_and_write_profiles(self, grid, tmp_path):
        out = tmp_path / "depth.h5lite"
        text = tmp_path / "profiles.txt"
        run = session(grid=grid).run(
            _noisy_stack(), output_path=str(out), text_path=str(text)
        )
        assert out.exists() and text.exists()
        assert run.output_path == str(out)
        assert run.text_path == str(text)
        assert json.loads(run.to_json())["outputs"]["output_path"] == str(out)

    def test_summary_mentions_source(self, grid):
        run = session(grid=grid).run(_noisy_stack())
        assert "source:" in run.summary()
        assert "backend=vectorized" in run.summary()


# --------------------------------------------------------------------------- #
class TestRunMany:
    def test_run_many_accepts_glob(self, scan_dir, grid):
        root, paths = scan_dir
        batch = session(grid=grid).run_many(str(root / "scan_*.h5lite"), max_workers=2)
        assert isinstance(batch, BatchRunResult)
        assert batch.n_files == len(paths) and batch.n_failed == 0
        assert [item.input_path for item in batch.items] == paths

    def test_run_many_single_source_is_batch_of_one(self, scan_dir, grid):
        _root, paths = scan_dir
        batch = session(grid=grid).run_many(paths[0])
        assert batch.n_files == 1 and batch.n_ok == 1

    def test_run_many_mixed_stacks_and_files(self, scan_dir, grid):
        _root, paths = scan_dir
        stack = _noisy_stack()
        batch = session(grid=grid).run_many([stack, paths[0]])
        assert batch.n_ok == 2
        solo = session(grid=grid).run(stack)
        np.testing.assert_array_equal(batch.items[0].result.data, solo.result.data)

    def test_run_many_provenance(self, scan_dir, grid):
        root, paths = scan_dir
        batch = session(grid=grid).run_many(str(root))
        record = json.loads(batch.to_json())
        assert record["n_files"] == len(paths)
        assert record["config"]["backend"] == "vectorized"
        assert record["source"]["kind"] == "batch"
        assert [item["input_path"] for item in record["items"]] == paths

    def test_run_many_error_isolation(self, scan_dir, grid):
        _root, paths = scan_dir
        bad = paths[0] + ".missing.h5lite"
        batch = session(grid=grid).run_many([paths[0], bad, paths[1]], max_workers=3)
        assert batch.n_ok == 2 and batch.n_failed == 1
        (failure,) = batch.failed
        assert failure.input_path == bad
        assert failure.error

    def test_run_many_isolates_unopenable_entries(self, scan_dir, grid):
        """A bad glob or empty-dir entry fails that item, not the batch."""
        root, paths = scan_dir
        empty = root / "empty_subdir"
        empty.mkdir()
        scheduled = [paths[0], "no-match-*.h5lite", str(empty), paths[1]]
        batch = session(grid=grid).run_many(scheduled, max_workers=2)
        assert batch.n_files == 4
        assert batch.n_ok == 2 and batch.n_failed == 2
        assert [item.ok for item in batch.items] == [True, False, False, True]
        assert "matched no files" in batch.items[1].error
        assert "contains no .h5lite" in batch.items[2].error
        record = json.loads(batch.to_json())
        assert record["items"][1]["input_path"] == "no-match-*.h5lite"

    def test_run_many_empty(self, grid):
        batch = session(grid=grid).run_many([])
        assert batch.n_files == 0 and batch.wall_time == 0.0
        assert json.loads(batch.to_json())["items"] == []


# --------------------------------------------------------------------------- #
class TestShimEquivalence:
    """Acceptance: the new front door reproduces the old API bit-for-bit."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_in_memory_identical_to_deprecated_reconstructor(self, backend, grid):
        from repro.core.reconstruction import DepthReconstructor

        stack = _noisy_stack(masked=True)
        with pytest.warns(DeprecationWarning):
            old_result, old_report = DepthReconstructor(
                grid=grid, backend=backend, rows_per_chunk=2
            ).reconstruct(stack)
        run = session(grid=grid, backend=backend, rows_per_chunk=2).run(stack)
        np.testing.assert_array_equal(run.result.data, old_result.data)
        assert run.report.n_chunks == old_report.n_chunks
        assert run.report.backend == old_report.backend

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("streaming", [False, True])
    def test_file_runs_identical_to_deprecated_pipeline(
        self, backend, streaming, grid, tmp_path
    ):
        from repro.core.pipeline import reconstruct_file

        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, _noisy_stack(masked=True))
        config = ReconstructionConfig(
            grid=grid, backend=backend, rows_per_chunk=2, streaming=streaming,
            subtract_background=True,
        )
        with pytest.warns(DeprecationWarning):
            old = reconstruct_file(str(path), config)
        run = session(config=config).run(str(path))
        np.testing.assert_array_equal(run.result.data, old.result.data)
        assert run.report.n_chunks == old.report.n_chunks

    def test_batch_identical_to_deprecated_reconstruct_many(self, scan_dir, grid):
        from repro.core.pipeline import reconstruct_many

        _root, paths = scan_dir
        config = ReconstructionConfig(grid=grid, streaming=True, rows_per_chunk=2)
        with pytest.warns(DeprecationWarning):
            old = reconstruct_many(paths, config, max_workers=2)
        new = session(config=config).run_many(paths, max_workers=2)
        assert old.n_ok == new.n_ok == len(paths)
        for old_item, new_item in zip(old.items, new.items):
            assert old_item.input_path == new_item.input_path
            np.testing.assert_array_equal(old_item.result.data, new_item.result.data)

    def test_reconstruct_many_treats_paths_literally(self, scan_dir, grid):
        """The shim must keep the historical 1:1 paths-to-items mapping —
        no glob/directory expansion, failures recorded per entry."""
        from repro.core.pipeline import reconstruct_many

        root, paths = scan_dir
        scheduled = [paths[0], str(root), "nomatch-*.h5lite"]
        with pytest.warns(DeprecationWarning):
            batch = reconstruct_many(scheduled, ReconstructionConfig(grid=grid))
        assert batch.n_files == 3
        assert [item.input_path for item in batch.items] == scheduled
        assert [item.ok for item in batch.items] == [True, False, False]

    def test_deprecated_shims_warn(self, grid, tmp_path):
        from repro.core.pipeline import reconstruct_file, reconstruct_many
        from repro.core.reconstruction import DepthReconstructor

        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, _noisy_stack())
        config = ReconstructionConfig(grid=grid)
        with pytest.warns(DeprecationWarning, match="DepthReconstructor"):
            DepthReconstructor(config=config)
        with pytest.warns(DeprecationWarning, match="reconstruct_file"):
            reconstruct_file(str(path), config)
        with pytest.warns(DeprecationWarning, match="reconstruct_many"):
            reconstruct_many([str(path)], config)

    def test_new_api_emits_no_warnings(self, grid, tmp_path):
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, _noisy_stack())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sess = session(grid=grid).on("gpusim").stream(rows_per_chunk=2)
            sess.run(str(path))
            sess.run_many([str(path)])
            open_source(str(path))

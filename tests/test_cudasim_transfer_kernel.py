"""Unit tests for simulated transfers and kernel launches."""

import numpy as np
import pytest

from repro.cudasim.device import Device, GENERIC_LAPTOP_GPU
from repro.cudasim.errors import LaunchConfigError, TransferError
from repro.cudasim.kernel import Kernel, LaunchConfig, launch
from repro.cudasim.transfer import (
    MemcpyKind,
    memcpy,
    memcpy_device_to_host,
    memcpy_host_to_device,
)


@pytest.fixture()
def device():
    return Device(GENERIC_LAPTOP_GPU)


class TestTransfers:
    def test_h2d_then_d2h_roundtrip(self, device):
        data = np.arange(24, dtype=np.float64).reshape(4, 6)
        buf = device.memory.allocate(data.shape, data.dtype)
        memcpy_host_to_device(device, buf, data)
        out = np.zeros_like(data)
        memcpy_device_to_host(device, out, buf)
        np.testing.assert_array_equal(out, data)

    def test_transfers_advance_clock(self, device):
        data = np.ones(1000, dtype=np.float64)
        buf = device.memory.allocate(data.shape, data.dtype)
        before = device.simulated_time
        memcpy_host_to_device(device, buf, data)
        assert device.simulated_time > before

    def test_transfer_time_matches_model(self, device):
        data = np.ones(1 << 16, dtype=np.float64)
        buf = device.memory.allocate(data.shape, data.dtype)
        seconds = memcpy_host_to_device(device, buf, data)
        assert np.isclose(seconds, device.perf.transfer_time(data.nbytes))

    def test_dtype_mismatch_rejected(self, device):
        buf = device.memory.allocate((4,), np.float64)
        with pytest.raises(TransferError):
            memcpy_host_to_device(device, buf, np.zeros(4, dtype=np.float32))

    def test_size_mismatch_rejected(self, device):
        buf = device.memory.allocate((4,), np.float64)
        with pytest.raises(TransferError):
            memcpy_host_to_device(device, buf, np.zeros(5, dtype=np.float64))

    def test_d2h_requires_contiguous_destination(self, device):
        buf = device.memory.allocate((4,), np.float64)
        strided = np.zeros(8, dtype=np.float64)[::2]
        with pytest.raises(TransferError):
            memcpy_device_to_host(device, strided, buf)

    def test_dispatching_memcpy(self, device):
        data = np.arange(8, dtype=np.float64)
        buf = device.memory.allocate(data.shape, data.dtype)
        memcpy(device, buf, data, MemcpyKind.HOST_TO_DEVICE)
        out = np.zeros_like(data)
        memcpy(device, out, buf, MemcpyKind.DEVICE_TO_HOST)
        np.testing.assert_array_equal(out, data)

    def test_profiler_kinds_recorded(self, device):
        data = np.arange(8, dtype=np.float64)
        buf = device.memory.allocate(data.shape, data.dtype)
        memcpy_host_to_device(device, buf, data)
        memcpy_device_to_host(device, np.zeros_like(data), buf)
        kinds = device.profiler.count_by_kind()
        assert kinds == {"memcpy_h2d": 1, "memcpy_d2h": 1}


class TestLaunchConfig:
    def test_for_volume_ceiling_division(self):
        cfg = LaunchConfig.for_volume((9, 2, 4), block_dim=(4, 2, 4))
        assert cfg.grid_dim == (3, 1, 1)
        assert cfg.threads_per_block == 32

    def test_total_threads_includes_overhang(self):
        cfg = LaunchConfig.for_volume((9, 2, 4), block_dim=(4, 2, 4))
        assert cfg.total_threads == 3 * 1 * 1 * 32
        assert cfg.thread_extent() == (12, 2, 4)

    def test_paper_example_thread_count(self):
        # the paper's Fig. 6 example: 2 rows x 9 cols x 4 images = 72 threads
        cfg = LaunchConfig.for_volume((9, 2, 4), block_dim=(9, 2, 4))
        assert cfg.total_threads == 72

    def test_thread_indices_cover_lattice_uniquely(self):
        cfg = LaunchConfig.for_volume((3, 2, 2), block_dim=(3, 2, 2))
        ix, iy, iz = cfg.thread_indices()
        coords = set(zip(ix.tolist(), iy.tolist(), iz.tolist()))
        assert len(coords) == cfg.total_threads

    def test_invalid_volume_rejected(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig.for_volume((0, 2, 2))

    def test_invalid_block_rejected(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid_dim=(1, 1, 1), block_dim=(0, 1, 1))


class TestKernelLaunch:
    def test_vectorized_and_per_thread_agree(self, device):
        counts_a = np.zeros(64)
        counts_b = np.zeros(64)

        def per_thread(tx, ty, tz, out):
            if tx < 4 and ty < 4 and tz < 4:
                out[tx + 4 * ty + 16 * tz] += tx + ty + tz

        def vectorized(ix, iy, iz, out):
            mask = (ix < 4) & (iy < 4) & (iz < 4)
            np.add.at(out, ix[mask] + 4 * iy[mask] + 16 * iz[mask], (ix + iy + iz)[mask])

        kernel = Kernel(name="sum3", per_thread=per_thread, vectorized=vectorized)
        cfg = LaunchConfig.for_volume((4, 4, 4), block_dim=(2, 2, 2))
        launch(device, kernel, cfg, counts_a, mode="per_thread")
        launch(device, kernel, cfg, counts_b, mode="vectorized")
        np.testing.assert_array_equal(counts_a, counts_b)

    def test_launch_advances_clock_and_profiles(self, device):
        kernel = Kernel(name="noop", vectorized=lambda ix, iy, iz: None)
        cfg = LaunchConfig.for_volume((8, 8, 1))
        seconds = launch(device, kernel, cfg)
        assert seconds > 0
        assert device.profiler.count_by_kind()["kernel"] == 1

    def test_launch_validates_against_device(self, device):
        kernel = Kernel(name="noop", vectorized=lambda ix, iy, iz: None)
        too_big_block = LaunchConfig(grid_dim=(1, 1, 1), block_dim=(64, 32, 2))
        with pytest.raises(LaunchConfigError):
            launch(device, kernel, too_big_block)

    def test_forcing_missing_body_raises(self, device):
        kernel = Kernel(name="vec-only", vectorized=lambda ix, iy, iz: None)
        cfg = LaunchConfig.for_volume((2, 2, 1))
        with pytest.raises(LaunchConfigError):
            launch(device, kernel, cfg, mode="per_thread")

    def test_kernel_requires_some_body(self):
        with pytest.raises(ValueError):
            Kernel(name="empty")

    def test_unknown_mode_rejected(self, device):
        kernel = Kernel(name="noop", vectorized=lambda ix, iy, iz: None)
        cfg = LaunchConfig.for_volume((2, 2, 1))
        with pytest.raises(ValueError):
            launch(device, kernel, cfg, mode="bogus")

"""Correctness suite for the content-addressed result cache.

The cache's contract, in order of importance:

* a hit is **bitwise-identical** to the recompute it replaces (stack bytes
  and provenance), on every backend;
* any change to the source bytes or to any config field changes the key —
  a stale entry can never be served as current;
* a corrupt or truncated entry is a miss that repairs itself, never a
  served result;
* ``run_many`` recomputes only the changed items of a batch;
* concurrent sessions sharing one cache root cannot corrupt each other.
"""

from __future__ import annotations

import glob
import json
import os
import threading

import pytest

import repro
from repro.core.cache import (
    CACHE_ENV_VAR,
    CacheStats,
    ResultCache,
    compute_cache_key,
    default_cache_root,
    resolve_cache,
)
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_point_source_stack
from repro.utils.validation import ValidationError


@pytest.fixture()
def cache_root(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture()
def small_stack():
    stack, _source = make_point_source_stack(depth=40.0, n_rows=6, n_cols=6, n_positions=41)
    return stack


@pytest.fixture()
def grid():
    return DepthGrid.from_range(0.0, 100.0, 20)


def _save_scan(path, depth=40.0, seed_offset=0):
    stack, _ = make_point_source_stack(
        depth=depth, n_rows=6, n_cols=6, n_positions=41 + seed_offset
    )
    save_wire_scan(path, stack)
    return stack


def _bump_mtime(path):
    """Force a visibly different mtime (rewrites within one tick must miss)."""
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


# --------------------------------------------------------------------------- #
# hits are bitwise-identical recomputes
class TestHitIdentity:
    @pytest.mark.parametrize("backend", ["cpu_reference", "vectorized", "gpusim", "multiprocess"])
    def test_hit_bitwise_identical_on_every_backend(self, backend, cache_root, small_stack, grid):
        sess = repro.session(grid=grid, backend=backend).cached(cache_root)
        cold = sess.run(small_stack)
        assert cold.cache_stats is not None and not cold.cache_stats.hit
        warm = sess.run(small_stack)
        assert warm.cache_stats.hit
        assert warm.result.data.tobytes() == cold.result.data.tobytes()
        # provenance identical outright — cache metadata lives on
        # run.cache_stats, not inside the provenance record
        assert warm.provenance() == cold.provenance()

    def test_hit_for_file_source_matches_streamed_and_in_memory_separately(
        self, cache_root, tmp_path, grid
    ):
        """Streaming is a config field, so each mode has its own key."""
        path = str(tmp_path / "scan.h5lite")
        _save_scan(path)
        sess = repro.session(grid=grid).cached(cache_root)
        in_memory = sess.run(path)
        streamed = sess.stream(rows_per_chunk=2).run(path)
        assert not in_memory.cache_stats.hit and not streamed.cache_stats.hit
        assert in_memory.cache_stats.key != streamed.cache_stats.key
        assert sess.run(path).cache_stats.hit
        assert sess.stream(rows_per_chunk=2).run(path).cache_stats.hit

    def test_hit_records_key_stored_at_and_verified_digest(self, cache_root, small_stack, grid):
        sess = repro.session(grid=grid).cached(cache_root)
        cold = sess.run(small_stack)
        warm = sess.run(small_stack)
        stats = warm.cache_stats
        assert isinstance(stats, CacheStats)
        assert stats.key == cold.cache_stats.key
        assert stats.stored_unix > 0
        assert stats.digest == warm.result.content_digest()
        assert os.path.isfile(stats.path)
        payload = stats.to_dict()
        assert payload["hit"] is True and payload["key"] == stats.key

    def test_hit_still_writes_requested_outputs(self, cache_root, small_stack, grid, tmp_path):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        out = str(tmp_path / "depth.h5lite")
        text = str(tmp_path / "profiles.txt")
        warm = sess.run(small_stack, output_path=out, text_path=text)
        assert warm.cache_stats.hit
        assert os.path.isfile(out) and os.path.isfile(text)
        assert repro.load(out).result.data.tobytes() == warm.result.data.tobytes()

    def test_cold_run_without_cache_has_no_cache_stats(self, small_stack, grid):
        run = repro.session(grid=grid).run(small_stack)
        assert run.cache_stats is None


# --------------------------------------------------------------------------- #
# key derivation and invalidation
class TestKeyInvalidation:
    def test_touching_source_bytes_changes_the_key(self, cache_root, tmp_path, grid):
        path = str(tmp_path / "scan.h5lite")
        _save_scan(path, depth=40.0)
        sess = repro.session(grid=grid).cached(cache_root)
        first = sess.run(path)
        _save_scan(path, depth=60.0)  # same shape, different bytes
        _bump_mtime(path)
        second = sess.run(path)
        assert not second.cache_stats.hit
        assert second.cache_stats.key != first.cache_stats.key
        assert second.result.data.tobytes() != first.result.data.tobytes()

    def test_in_memory_stack_bytes_change_the_key(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        first = sess.run(small_stack)
        other = repro.core.WireScanStack(
            images=small_stack.images + 1.0,
            scan=small_stack.scan,
            detector=small_stack.detector,
            beam=small_stack.beam,
        )
        second = sess.run(other)
        assert not second.cache_stats.hit
        assert second.cache_stats.key != first.cache_stats.key

    @pytest.mark.parametrize("overrides", [
        {"backend": "gpusim"},
        {"layout": "pointer3d", "backend": "gpusim"},
        {"rows_per_chunk": 2},
        {"intensity_cutoff": 0.5},
        {"subtract_background": True},
        {"streaming": True},
        {"n_workers": 3},
        {"difference_mode": repro.core.DifferenceMode.RECTIFIED},
    ])
    def test_every_config_field_participates_in_the_key(self, overrides, grid, small_stack):
        base = ReconstructionConfig(grid=grid, backend="vectorized")
        fingerprint = repro.open(small_stack).fingerprint()
        changed = base.with_overrides(**overrides)
        assert compute_cache_key(fingerprint, base) != compute_cache_key(fingerprint, changed)

    def test_grid_participates_in_the_key(self, grid, small_stack):
        fingerprint = repro.open(small_stack).fingerprint()
        base = ReconstructionConfig(grid=grid)
        other = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 21))
        assert compute_cache_key(fingerprint, base) != compute_cache_key(fingerprint, other)

    def test_key_is_deterministic_across_cache_objects(self, grid, small_stack):
        fingerprint = repro.open(small_stack).fingerprint()
        config = ReconstructionConfig(grid=grid)
        assert compute_cache_key(fingerprint, config) == compute_cache_key(fingerprint, config)

    def test_empty_fingerprint_rejected(self, grid):
        with pytest.raises(ValidationError):
            compute_cache_key({}, ReconstructionConfig(grid=grid))


# --------------------------------------------------------------------------- #
# corruption: always a miss, never a served result
class TestCorruptEntries:
    def _entry_path(self, cache_root):
        entries = glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))
        assert len(entries) == 1
        return entries[0]

    def _poisoned_session(self, cache_root, grid, small_stack, poison):
        sess = repro.session(grid=grid).cached(cache_root)
        cold = sess.run(small_stack)
        poison(self._entry_path(cache_root))
        return sess, cold

    @pytest.mark.parametrize("poison", [
        lambda path: open(path, "wb").close(),                           # emptied
        lambda path: open(path, "r+b").truncate(os.path.getsize(path) // 2),  # truncated
        lambda path: open(path, "r+b").write(b"garbage!"),               # magic clobbered
    ], ids=["emptied", "truncated", "bad-magic"])
    def test_unreadable_entry_is_miss_and_repaired(self, cache_root, grid, small_stack, poison):
        sess, cold = self._poisoned_session(cache_root, grid, small_stack, poison)
        warm = sess.run(small_stack)
        assert not warm.cache_stats.hit  # recomputed, never served corrupt bytes
        assert warm.result.data.tobytes() == cold.result.data.tobytes()
        assert sess.cache.n_repaired == 1
        # the recompute re-stored a healthy entry: next request hits again
        assert sess.run(small_stack).cache_stats.hit

    def test_flipped_data_bytes_fail_digest_verification(self, cache_root, grid, small_stack):
        """Bit rot in the data section parses fine — the digest catches it."""
        def poison(path):
            with open(path, "r+b") as fh:
                fh.seek(-9, os.SEEK_END)
                byte = fh.read(1)
                fh.seek(-9, os.SEEK_END)
                fh.write(bytes([byte[0] ^ 0xFF]))

        sess, cold = self._poisoned_session(cache_root, grid, small_stack, poison)
        warm = sess.run(small_stack)
        assert not warm.cache_stats.hit
        assert warm.result.data.tobytes() == cold.result.data.tobytes()
        assert sess.cache.n_repaired == 1

    def test_verify_deletes_only_broken_entries(self, cache_root, grid, small_stack, tmp_path):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        path = str(tmp_path / "scan.h5lite")
        _save_scan(path, depth=70.0)
        sess.run(path)
        entries = sorted(glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite")))
        assert len(entries) == 2
        with open(entries[0], "r+b") as fh:
            fh.write(b"garbage!")
        outcome = sess.cache.verify()
        assert outcome["checked"] == 2
        assert outcome["repaired"] == [entries[0]]
        assert os.path.isfile(entries[1]) and not os.path.exists(entries[0])


# --------------------------------------------------------------------------- #
# incremental batches
class TestIncrementalRunMany:
    def _make_batch(self, tmp_path, n=4):
        paths = []
        for index in range(n):
            path = str(tmp_path / f"scan_{index}.h5lite")
            _save_scan(path, depth=20.0 + 15.0 * index)
            paths.append(path)
        return paths

    def test_second_batch_is_all_hits(self, cache_root, tmp_path, grid):
        paths = self._make_batch(tmp_path)
        sess = repro.session(grid=grid).cached(cache_root)
        first = sess.run_many(paths)
        assert first.n_ok == 4 and first.n_cached == 0
        second = sess.run_many(paths)
        assert second.n_ok == 4 and second.n_cached == 4 and second.n_computed == 0
        for a, b in zip(first.succeeded, second.succeeded):
            assert a.result.data.tobytes() == b.result.data.tobytes()

    def test_only_changed_files_recompute(self, cache_root, tmp_path, grid):
        paths = self._make_batch(tmp_path)
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run_many(paths)
        _save_scan(paths[2], depth=99.0)
        _bump_mtime(paths[2])
        batch = sess.run_many(paths)
        assert [item.cached for item in batch.items] == [True, True, False, True]
        assert batch.n_cached == 3 and batch.n_computed == 1
        # the changed item's fresh result was stored: run again, all hits
        assert sess.run_many(paths).n_cached == 4

    def test_cached_items_still_write_output_dir(self, cache_root, tmp_path, grid):
        paths = self._make_batch(tmp_path, n=2)
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run_many(paths)
        out_dir = str(tmp_path / "out")
        batch = sess.run_many(paths, output_dir=out_dir)
        assert batch.n_cached == 2
        for item in batch.items:
            assert item.output_path and os.path.isfile(item.output_path)
            loaded = repro.load(item.output_path)
            assert loaded.result.data.tobytes() == item.result.data.tobytes()

    def test_failed_items_are_isolated_and_never_cached(self, cache_root, tmp_path, grid):
        paths = self._make_batch(tmp_path, n=2)
        missing = str(tmp_path / "missing.h5lite")
        sess = repro.session(grid=grid).cached(cache_root)
        first = sess.run_many(paths + [missing])
        assert first.n_ok == 2 and first.n_failed == 1
        second = sess.run_many(paths + [missing])
        assert second.n_cached == 2 and second.n_failed == 1
        assert not second.items[2].cached

    def test_uncached_session_never_marks_items_cached(self, tmp_path, grid):
        paths = self._make_batch(tmp_path, n=2)
        sess = repro.session(grid=grid)
        batch = sess.run_many(paths)
        assert batch.n_cached == 0
        assert "cached" in batch.to_dict()["items"][0]


# --------------------------------------------------------------------------- #
# analysis memoization
class TestAnalysisMemoization:
    def test_analyze_is_memoized_per_run_key_and_pipeline(self, cache_root, small_stack, grid):
        sess = repro.session(grid=grid).cached(cache_root)
        cold = sess.run(small_stack)
        first = cold.analyze("peaks", "fwhm")
        assert sess.cache.stats()["n_analyses"] == 1
        warm = sess.run(small_stack)
        second = warm.analyze("peaks", "fwhm")
        assert first.to_json() == second.to_json()
        # a different pipeline is a different memo entry
        warm.analyze("total_intensity")
        assert sess.cache.stats()["n_analyses"] == 2

    def test_run_analyze_kwarg_is_memoized_too(self, cache_root, small_stack, grid):
        sess = repro.session(grid=grid).cached(cache_root)
        cold = sess.run(small_stack, analyze="total_intensity")
        warm = sess.run(small_stack, analyze="total_intensity")
        assert cold.analysis.to_json() == warm.analysis.to_json()
        assert sess.cache.stats()["n_analyses"] == 1

    def test_pipeline_signature_depends_on_ops_order_and_params(self):
        a = repro.analysis("peaks", "fwhm")
        b = repro.analysis("fwhm", "peaks")
        c = repro.analysis(("peaks", {"min_relative_height": 0.2}), "fwhm")
        assert len({a.signature(), b.signature(), c.signature()}) == 3
        assert a.signature() == repro.analysis("peaks", "fwhm").signature()


# --------------------------------------------------------------------------- #
# concurrency
class TestConcurrentSessions:
    def test_concurrent_sessions_share_one_root_without_corruption(
        self, cache_root, grid, tmp_path
    ):
        """Many threads, same (source, config), one root: every result is right."""
        path = str(tmp_path / "scan.h5lite")
        stack = _save_scan(path)
        reference = repro.session(grid=grid).run(stack)
        results = []
        errors = []

        def worker():
            try:
                sess = repro.session(grid=grid).cached(ResultCache(cache_root))
                run = sess.run(path)
                results.append(run.result.data.tobytes())
            except Exception as exc:  # pragma: no cover - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        assert all(blob == reference.result.data.tobytes() for blob in results)
        # afterwards the root holds exactly one healthy entry
        cache = ResultCache(cache_root)
        stats = cache.stats()
        assert stats["n_runs"] == 1
        assert cache.verify()["n_repaired"] == 0

    def test_atomic_writes_leave_no_tmp_files(self, cache_root, small_stack, grid):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        leftovers = [
            name for _root, _dirs, files in os.walk(cache_root)
            for name in files if ".tmp-" in name
        ]
        assert leftovers == []


# --------------------------------------------------------------------------- #
# cache plumbing
class TestCachePlumbing:
    def test_resolve_cache_forms(self, cache_root):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        session_cache = ResultCache(cache_root)
        assert resolve_cache(None, session_cache) is session_cache
        assert resolve_cache(False, session_cache) is None
        assert resolve_cache(cache_root).root == cache_root
        assert resolve_cache(session_cache) is session_cache
        with pytest.raises(ValidationError):
            resolve_cache(42)

    def test_default_root_honours_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "envroot"))
        assert default_cache_root() == str(tmp_path / "envroot")
        assert ResultCache().root == str(tmp_path / "envroot")
        monkeypatch.delenv(CACHE_ENV_VAR)
        assert default_cache_root().endswith(os.path.join(".cache", "repro"))

    def test_cached_session_is_immutable_and_fluent(self, cache_root, grid):
        sess = repro.session(grid=grid)
        cached = sess.cached(cache_root)
        assert sess.cache is None and cached.cache is not None
        assert cached.on("gpusim").cache is cached.cache  # fluent methods keep it
        assert cached.stream(2).cache is cached.cache
        assert cached.configure(intensity_cutoff=0.1).cache is cached.cache
        assert cached.cached(False).cache is None

    def test_per_call_cache_overrides_session(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        run = sess.run(small_stack, cache=False)
        assert run.cache_stats is None
        assert ResultCache(cache_root).stats()["n_runs"] == 0

    def test_prune_and_clear(self, cache_root, grid, small_stack, tmp_path):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        path = str(tmp_path / "scan.h5lite")
        _save_scan(path, depth=55.0)
        sess.run(path)
        cache = sess.cache
        assert cache.stats()["n_runs"] == 2
        # max_bytes=1: everything must go (each entry is larger than a byte)
        outcome = cache.prune(max_bytes=1)
        assert outcome["removed"] == 2 and cache.stats()["n_runs"] == 0
        sess.run(small_stack)
        assert cache.stats()["n_runs"] == 1
        assert cache.clear()["removed"] == 1
        assert cache.stats()["total_bytes"] == 0

    def test_prune_older_than_keeps_recent_entries(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        assert sess.cache.prune(older_than_s=3600.0)["removed"] == 0
        entry = glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))[0]
        old = os.stat(entry)
        os.utime(entry, ns=(old.st_atime_ns, old.st_mtime_ns - int(7200e9)))
        assert sess.cache.prune(older_than_s=3600.0)["removed"] == 1

    def test_failed_store_degrades_to_uncached_run(self, tmp_path, grid, small_stack):
        """An unwritable cache root must never lose a successful run.

        The root's parent is a regular *file*, so every ``os.makedirs``
        inside the store fails with an OSError — chmod tricks would not
        work for a root test runner, this fails for any uid.
        """
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        root = str(blocker / "cache")
        sess = repro.session(grid=grid).cached(root)
        run = sess.run(small_stack)
        assert run.result.total_intensity() > 0  # the run survived
        assert run.cache_stats is None  # ...just uncached
        batch = sess.run_many([small_stack, small_stack])
        assert batch.n_ok == 2 and batch.n_failed == 0

    def test_prune_and_clear_sweep_orphaned_tmp_files(self, cache_root, grid, small_stack):
        """A writer killed mid-store leaves a .tmp- file; maintenance reclaims it."""
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        shard = os.path.dirname(glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))[0])
        orphan = os.path.join(shard, "deadbeef.h5lite.tmp-9999-1")
        with open(orphan, "wb") as fh:
            fh.write(b"partial write")
        assert sess.cache.stats()["n_orphaned_tmp"] == 1
        # a *young* orphan survives prune: it may be a live concurrent write
        sess.cache.prune(older_than_s=3600.0)
        assert os.path.exists(orphan)
        old = os.stat(orphan)
        os.utime(orphan, ns=(old.st_atime_ns, old.st_mtime_ns - int(7200e9)))
        sess.cache.prune(older_than_s=3600.0)
        assert not os.path.exists(orphan)
        # clear sweeps orphans regardless of age
        with open(orphan, "wb") as fh:
            fh.write(b"partial write")
        sess.cache.clear()
        assert not os.path.exists(orphan)
        assert sess.cache.stats()["n_orphaned_tmp"] == 0

    def test_cache_entry_record_is_json_clean(self, cache_root, grid, small_stack):
        """The stored cache block must round-trip as strict JSON."""
        from repro.io.image_stack import load_run_payload

        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        entry = glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))[0]
        _stack, record = load_run_payload(entry)
        block = record["cache"]
        assert set(block) == {"format", "key", "stored_unix", "data_sha256"}
        json.dumps(record)  # strictly serialisable
        # cache entries never claim user outputs
        assert record["outputs"] == {
            "output_path": None, "text_path": None, "profile_pixels": None,
        }


# --------------------------------------------------------------------------- #
# structured session counters (the serve /metrics "cache" section)
class TestCounters:
    def test_counters_track_probe_outcomes(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        cache = sess.cache
        assert cache.counters() == {
            "hits": 0, "misses": 0, "stores": 0, "repaired": 0,
            "probes": 0, "hit_rate": None,
        }
        sess.run(small_stack)  # miss + store
        counters = cache.counters()
        assert counters["misses"] == 1 and counters["stores"] == 1
        assert counters["hits"] == 0 and counters["hit_rate"] == 0.0
        sess.run(small_stack)  # hit
        counters = cache.counters()
        assert counters["hits"] == 1 and counters["probes"] == 2
        assert counters["hit_rate"] == 0.5

    def test_counters_track_repairs(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        entry = glob.glob(os.path.join(cache_root, "runs", "*", "*.h5lite"))[0]
        with open(entry, "r+b") as fh:
            fh.write(b"garbage!")
        sess.run(small_stack)  # repair + recompute + re-store
        counters = sess.cache.counters()
        assert counters["repaired"] == 1
        assert counters["stores"] == 2

    def test_stats_embeds_the_session_counters(self, cache_root, grid, small_stack):
        sess = repro.session(grid=grid).cached(cache_root)
        sess.run(small_stack)
        stats = sess.cache.stats()
        assert stats["session"] == sess.cache.counters()
        json.dumps(stats)  # the whole stats document stays JSON-safe

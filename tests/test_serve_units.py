"""Unit tests for the serve building blocks: queue, metrics, job parsing.

The e2e daemon tests live in ``test_serve_http.py``; here every component
is exercised in isolation — the fair-queueing order, the bounded-depth 429
path, tombstone cancellation, nearest-rank percentiles, the /metrics
document shape, and submission validation.
"""

import asyncio
import json

import pytest

import repro
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.io.image_stack import save_wire_scan
from repro.serve.jobs import Job, JobState, parse_submission
from repro.serve.metrics import LatencySeries, ServeMetrics, merge_counter_deltas, percentile
from repro.serve.queue import FairPriorityQueue, QueueFull
from repro.utils.validation import ValidationError

from tests.helpers import make_tiny_stack


def _job(client="c", priority=0):
    return Job(client=client, source_path="/dev/null", config=None, priority=priority)


def _drain(queue, n):
    async def _pop_all():
        return [await queue.get() for _ in range(n)]

    return asyncio.run(_pop_all())


# --------------------------------------------------------------------------- #
class TestFairPriorityQueue:
    def test_fifo_within_one_client(self):
        queue = FairPriorityQueue(depth=8)
        jobs = [_job() for _ in range(4)]
        for job in jobs:
            queue.put_nowait(job)
        assert _drain(queue, 4) == jobs

    def test_priority_orders_before_fairness(self):
        queue = FairPriorityQueue(depth=8)
        late_but_urgent = _job(priority=-1)
        first = _job()
        queue.put_nowait(first)
        queue.put_nowait(late_but_urgent)
        assert _drain(queue, 2) == [late_but_urgent, first]

    def test_new_client_jumps_a_backlog(self):
        """A second client's first job is served ahead of a 5-deep backlog."""
        queue = FairPriorityQueue(depth=16)
        hog_jobs = [_job(client="hog") for _ in range(5)]
        for job in hog_jobs:
            queue.put_nowait(job)
        newcomer = _job(client="newcomer")
        queue.put_nowait(newcomer)
        order = _drain(queue, 6)
        # newcomer entered at rank 0, so only hog's rank-0 job precedes it
        assert order.index(newcomer) == 1
        assert order[0] is hog_jobs[0]

    def test_interleaves_two_equal_backlogs(self):
        queue = FairPriorityQueue(depth=16)
        a_jobs = [_job(client="a") for _ in range(3)]
        b_jobs = [_job(client="b") for _ in range(3)]
        for job in a_jobs:  # a's whole backlog submitted first
            queue.put_nowait(job)
        for job in b_jobs:
            queue.put_nowait(job)
        clients = [job.client for job in _drain(queue, 6)]
        assert clients == ["a", "b", "a", "b", "a", "b"]

    def test_bounded_depth_raises_queue_full(self):
        queue = FairPriorityQueue(depth=2)
        queue.put_nowait(_job())
        queue.put_nowait(_job())
        with pytest.raises(QueueFull):
            queue.put_nowait(_job())
        assert queue.n_rejected == 1
        assert queue.full

    def test_cancel_frees_a_slot_without_popping(self):
        queue = FairPriorityQueue(depth=2)
        doomed = _job()
        kept = _job()
        queue.put_nowait(doomed)
        queue.put_nowait(kept)
        doomed.cancel()
        queue.cancel(doomed)
        assert len(queue) == 1 and not queue.full
        queue.put_nowait(_job(client="late"))
        # the tombstone is skipped at pop time
        popped = _drain(queue, 2)
        assert doomed not in popped and kept in popped

    def test_client_accounting_does_not_leak(self):
        queue = FairPriorityQueue(depth=8)
        for index in range(6):
            queue.put_nowait(_job(client=f"client-{index}"))
        _drain(queue, 6)
        assert queue.snapshot()["clients_waiting"] == 0

    def test_get_waits_for_a_put(self):
        queue = FairPriorityQueue(depth=2)

        async def _scenario():
            waiter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0.01)
            assert not waiter.done()
            job = _job()
            queue.put_nowait(job)
            assert await asyncio.wait_for(waiter, timeout=1.0) is job

        asyncio.run(_scenario())

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FairPriorityQueue(depth=0)


# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile([7.0], 0.50) == 7.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_latency_series_window_and_lifetime(self):
        series = LatencySeries(window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            series.record(value)
        snap = series.snapshot()
        assert snap["count"] == 5  # lifetime count survives the window
        assert snap["max_s"] == 100.0  # percentiles come from the window
        assert snap["p50_s"] == 3.0

    def test_empty_series_snapshot_is_none_shaped(self):
        snap = LatencySeries().snapshot()
        assert snap == {"count": 0, "mean_s": None, "p50_s": None,
                        "p90_s": None, "p99_s": None, "max_s": None}

    def test_to_dict_shape_and_fast_path_rate(self):
        metrics = ServeMetrics()
        for _ in range(4):
            metrics.inc("submitted")
        metrics.inc("cache_hits")
        metrics.inc("collapsed")
        document = metrics.to_dict(inflight=2, draining=False, extra={"version": "x"})
        assert document["singleflight"]["fast_path_rate"] == 0.5
        assert document["inflight"] == 2
        assert document["version"] == "x"
        assert set(document["latency"]) == {"queue_wait", "run", "total"}
        json.dumps(document)  # the whole document must be JSON-safe

    def test_fast_path_rate_none_before_traffic(self):
        assert ServeMetrics().to_dict()["singleflight"]["fast_path_rate"] is None

    def test_merge_counter_deltas(self):
        before = {"computed": 1, "submitted": 5}
        after = {"computed": 4, "submitted": 9}
        assert merge_counter_deltas(before, after, ["computed"]) == {"computed": 3}


# --------------------------------------------------------------------------- #
class TestParseSubmission:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "scan.h5lite"
        save_wire_scan(str(path), make_tiny_stack())
        return str(path)

    @pytest.fixture()
    def config_dict(self):
        return ReconstructionConfig(grid=DepthGrid.from_range(0, 100, 10)).to_dict()

    def test_minimal_valid_submission(self, source_file, config_dict):
        job = parse_submission({"source": {"path": source_file}, "config": config_dict})
        assert job.state is JobState.QUEUED
        assert job.client == "anonymous"
        assert job.priority == 0
        assert job.config.grid.n_bins == 10

    def test_full_submission(self, source_file, config_dict):
        job = parse_submission({
            "source": {"path": source_file},
            "config": config_dict,
            "analyze": ["peaks", ["fwhm", {}]],
            "priority": -2,
            "client": "  beamline-34  ",
            "timeout_s": 12.5,
        })
        assert job.client == "beamline-34"
        assert job.priority == -2
        assert job.timeout_s == 12.5
        assert job.pipeline is not None

    @pytest.mark.parametrize("body", [
        None,
        [],
        {},
        {"source": {}},
        {"source": {"path": "/no/such/file.h5lite"}},
    ])
    def test_bad_source_rejected(self, body, config_dict):
        if isinstance(body, dict) and body.get("source", {}).get("path"):
            body["config"] = config_dict
        with pytest.raises(ValidationError):
            parse_submission(body)

    def test_missing_or_bad_config_rejected(self, source_file):
        with pytest.raises(ValidationError):
            parse_submission({"source": {"path": source_file}})
        with pytest.raises(ValidationError):
            parse_submission({"source": {"path": source_file}, "config": {"backend": "nope"}})

    def test_unknown_analysis_op_rejected_at_admission(self, source_file, config_dict):
        with pytest.raises(ValidationError):
            parse_submission({
                "source": {"path": source_file},
                "config": config_dict,
                "analyze": ["definitely-not-an-op"],
            })

    def test_bool_priority_rejected(self, source_file, config_dict):
        with pytest.raises(ValidationError):
            parse_submission({
                "source": {"path": source_file},
                "config": config_dict,
                "priority": True,
            })

    def test_nonpositive_timeout_rejected(self, source_file, config_dict):
        with pytest.raises(ValidationError):
            parse_submission({
                "source": {"path": source_file},
                "config": config_dict,
                "timeout_s": 0,
            })

    def test_client_id_is_capped(self, source_file, config_dict):
        job = parse_submission({
            "source": {"path": source_file},
            "config": config_dict,
            "client": "x" * 500,
        })
        assert len(job.client) == 64

    def test_status_dict_is_json_safe(self, source_file, config_dict):
        job = parse_submission({"source": {"path": source_file}, "config": config_dict})
        job.mark_running()
        job.finish_ok({"provenance": {}}, served="computed")
        document = job.status_dict()
        json.dumps(document)
        assert document["state"] == "done"
        assert document["timings"]["total_s"] >= 0


# --------------------------------------------------------------------------- #
class TestSessionCacheKey:
    def test_cache_key_matches_run_key(self, tmp_path):
        """The admission probe computes exactly the key a real run uses."""
        path = tmp_path / "scan.h5lite"
        save_wire_scan(str(path), make_tiny_stack())
        session = repro.session(grid=repro.DepthGrid.from_range(0, 100, 10))
        key = session.cache_key(str(path))
        assert key is not None
        run = session.run(str(path), cache=str(tmp_path / "cache"))
        assert run.cache_stats.key == key

    def test_cache_key_rejects_batch_sources(self, tmp_path):
        for name in ("a.h5lite", "b.h5lite"):
            save_wire_scan(str(tmp_path / name), make_tiny_stack())
        session = repro.session(grid=repro.DepthGrid.from_range(0, 100, 10))
        with pytest.raises(ValidationError):
            session.cache_key(str(tmp_path / "*.h5lite"))

    def test_cache_key_for_in_memory_stack_is_stable(self):
        session = repro.session(grid=repro.DepthGrid.from_range(0, 100, 10))
        stack = make_tiny_stack()
        key = session.cache_key(stack)
        assert key is not None and key == session.cache_key(stack)

    def test_cache_key_none_for_unfingerprintable(self, tmp_path):
        """A non-h5lite file cannot promise identity: the probe returns None."""
        bogus = tmp_path / "not-a-scan.h5lite"
        bogus.write_bytes(b"definitely not an h5lite header")
        session = repro.session(grid=repro.DepthGrid.from_range(0, 100, 10))
        assert session.cache_key(str(bogus)) is None

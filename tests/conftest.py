"""Shared fixtures for the test-suite.

Fixtures are deliberately small (a handful of detector rows, tens of wire
positions) so that even the scalar reference backend runs in milliseconds;
the accuracy-oriented integration tests use slightly larger session-scoped
stacks that are generated once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.wire import Wire
from repro.synthetic.forward_model import design_scan_for_depth_range, simulate_wire_scan
from repro.synthetic.sample import DepthSourceField
from repro.synthetic.workloads import make_benchmark_workload, make_point_source_stack


@pytest.fixture(autouse=True)
def _race_sanitizer_gate():
    """Fail any test during which an unsynchronized cross-thread write landed.

    No-op unless ``REPRO_RACE_SANITIZER=1`` (the CI sanitizer lane).  The
    pre-test drain clears writes recorded during collection/imports so a
    violation is attributed to the test that actually produced it.
    """
    from repro.staticcheck import sanitizer

    if not sanitizer.enabled():
        yield
        return
    sanitizer.drain()
    yield
    violations = sanitizer.drain()
    assert not violations, "race sanitizer: " + "; ".join(
        v.render() for v in violations
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture()
def small_detector() -> Detector:
    """A tiny canonical detector (6 rows x 5 cols)."""
    return Detector(n_rows=6, n_cols=5, pixel_size=200.0, distance=510_000.0, center=(0.0, 0.0))


@pytest.fixture()
def default_wire() -> Wire:
    """The default 26 um radius wire."""
    return Wire()


@pytest.fixture()
def depth_grid() -> DepthGrid:
    """Depth grid covering 0-100 um with 25 bins."""
    return DepthGrid.from_range(0.0, 100.0, 25)


@pytest.fixture()
def small_scan(small_detector):
    """A scan designed to depth-resolve 0-100 um on the small detector."""
    return design_scan_for_depth_range(small_detector, (0.0, 100.0), n_points=61)


@pytest.fixture()
def point_source_stack(small_detector, small_scan):
    """A stack with a single emitter at 40 um illuminating every pixel."""
    depth_samples = np.linspace(0.0, 100.0, 64, endpoint=False) + 100.0 / 128.0
    source = DepthSourceField.point_source(small_detector, 40.0, depth_samples, intensity=500.0)
    stack = simulate_wire_scan(source, small_scan, small_detector, Beam())
    return stack, source


@pytest.fixture()
def default_config(depth_grid) -> ReconstructionConfig:
    """Default vectorised-backend configuration on the shared grid."""
    return ReconstructionConfig(grid=depth_grid, backend="vectorized")


# --------------------------------------------------------------------------- #
# session-scoped, more expensive fixtures
@pytest.fixture(scope="session")
def session_point_stack():
    """Medium point-source stack shared by accuracy tests."""
    stack, source = make_point_source_stack(depth=40.0, n_rows=8, n_cols=8, n_positions=81)
    return stack, source


@pytest.fixture(scope="session")
def session_workload():
    """A small benchmark workload shared by backend-equivalence tests."""
    return make_benchmark_workload("2.1G", scale=1.0 / 32768.0, seed=3)


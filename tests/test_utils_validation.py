"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ValidationError,
    ensure_dtype,
    ensure_finite,
    ensure_in_range,
    ensure_monotonic_increasing,
    ensure_ndim,
    ensure_non_negative,
    ensure_positive,
    ensure_shape,
    ensure_unit_vector,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(2.5) == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            ensure_positive(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            ensure_positive(-1.0, "length")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            ensure_positive(float("nan"))

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="radius"):
            ensure_positive(-3, "radius")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            ensure_non_negative(-0.1)


class TestEnsureShape:
    def test_exact_match(self):
        arr = np.zeros((3, 4))
        assert ensure_shape(arr, (3, 4)) is not None

    def test_wildcard_axis(self):
        arr = np.zeros((7, 4))
        ensure_shape(arr, (None, 4))

    def test_wrong_ndim(self):
        with pytest.raises(ValidationError):
            ensure_shape(np.zeros(3), (3, 1))

    def test_wrong_axis_length(self):
        with pytest.raises(ValidationError):
            ensure_shape(np.zeros((3, 5)), (3, 4))


class TestEnsureNdimAndDtype:
    def test_ndim_pass(self):
        ensure_ndim(np.zeros((2, 2)), 2)

    def test_ndim_fail(self):
        with pytest.raises(ValidationError):
            ensure_ndim(np.zeros(4), 2)

    def test_dtype_pass(self):
        ensure_dtype(np.zeros(3, dtype=np.float64), np.float64)

    def test_dtype_fail(self):
        with pytest.raises(ValidationError):
            ensure_dtype(np.zeros(3, dtype=np.float32), np.float64)


class TestEnsureInRange:
    def test_inclusive_bounds(self):
        assert ensure_in_range(1.0, 1.0, 2.0) == 1.0
        assert ensure_in_range(2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            ensure_in_range(1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            ensure_in_range(3.0, 0.0, 2.0)


class TestEnsureUnitVector:
    def test_unit_vector_ok(self):
        v = ensure_unit_vector((1.0, 0.0, 0.0))
        assert v.shape == (3,)

    def test_non_unit_rejected(self):
        with pytest.raises(ValidationError):
            ensure_unit_vector((1.0, 1.0, 0.0))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            ensure_unit_vector((1.0, 0.0))


class TestEnsureFiniteAndMonotonic:
    def test_finite_ok(self):
        ensure_finite(np.arange(5.0))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            ensure_finite(np.array([1.0, np.nan]))

    def test_monotonic_ok(self):
        ensure_monotonic_increasing(np.array([1.0, 2.0, 3.0]))

    def test_monotonic_strict_rejects_ties(self):
        with pytest.raises(ValidationError):
            ensure_monotonic_increasing(np.array([1.0, 1.0, 2.0]))

    def test_monotonic_non_strict_allows_ties(self):
        ensure_monotonic_increasing(np.array([1.0, 1.0, 2.0]), strict=False)

    def test_monotonic_requires_1d(self):
        with pytest.raises(ValidationError):
            ensure_monotonic_increasing(np.zeros((2, 2)))

"""Cross-backend tests: every backend must produce the same reconstruction."""

import numpy as np
import pytest

from repro.core.backends import available_backends, get_backend, register_backend
from repro.core.backends.base import Backend, build_kernel_context
from repro.core.backends.multiprocess import MultiprocessBackend
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.cudasim.device import Device, GENERIC_LAPTOP_GPU
from repro.utils.validation import ValidationError

ALL_BACKENDS = ("cpu_reference", "vectorized", "gpusim", "multiprocess")


class TestRegistry:
    def test_all_expected_backends_registered(self):
        names = available_backends()
        for name in ALL_BACKENDS:
            assert name in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            get_backend("does-not-exist")

    def test_register_requires_name(self):
        with pytest.raises(ValidationError):
            @register_backend
            class Nameless(Backend):  # pragma: no cover - definition only
                name = ""

                def reconstruct(self, stack, config):
                    raise NotImplementedError


class TestBackendEquivalence:
    @pytest.fixture()
    def reference_result(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        result, _ = get_backend("cpu_reference").reconstruct(stack, default_config.with_backend("cpu_reference"))
        return result

    @pytest.mark.parametrize("backend_name", ["vectorized", "gpusim", "multiprocess"])
    def test_backend_matches_reference(self, backend_name, point_source_stack, default_config, reference_result):
        stack, _ = point_source_stack
        config = default_config.with_backend(backend_name)
        result, report = get_backend(backend_name).reconstruct(stack, config)
        np.testing.assert_allclose(result.data, reference_result.data, rtol=1e-8, atol=1e-10)
        assert report.backend == backend_name
        assert report.wall_time >= 0

    def test_gpusim_layouts_agree(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        flat, _ = get_backend("gpusim").reconstruct(stack, default_config.with_backend("gpusim", layout="flat1d"))
        ptr, _ = get_backend("gpusim").reconstruct(stack, default_config.with_backend("gpusim", layout="pointer3d"))
        np.testing.assert_allclose(flat.data, ptr.data, rtol=1e-12, atol=1e-14)

    def test_gpusim_chunked_equals_unchunked(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        unchunked, rep_a = get_backend("gpusim").reconstruct(
            stack, default_config.with_backend("gpusim")
        )
        chunked, rep_b = get_backend("gpusim").reconstruct(
            stack, default_config.with_backend("gpusim", rows_per_chunk=2)
        )
        np.testing.assert_allclose(chunked.data, unchunked.data, rtol=1e-12, atol=1e-14)
        assert rep_b.n_chunks > rep_a.n_chunks

    def test_gpusim_small_memory_forces_chunking(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        config = default_config.with_backend("gpusim", device_memory_limit=16 * 1024)
        result, report = get_backend("gpusim").reconstruct(stack, config)
        assert report.n_chunks > 1
        assert result.total_intensity() > 0

    def test_multiprocess_worker_counts_agree(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        one, _ = get_backend("multiprocess").reconstruct(stack, default_config.with_backend("multiprocess", n_workers=1))
        three, _ = get_backend("multiprocess").reconstruct(stack, default_config.with_backend("multiprocess", n_workers=3))
        np.testing.assert_allclose(one.data, three.data, rtol=1e-12, atol=1e-14)


class TestGpuSimAccounting:
    def test_transfer_and_compute_times_reported(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        _, report = get_backend("gpusim").reconstruct(stack, default_config.with_backend("gpusim"))
        assert report.simulated_device_time > 0
        assert report.transfer_time > 0
        assert report.compute_time > 0
        assert np.isclose(report.simulated_device_time, report.transfer_time + report.compute_time, rtol=1e-6)
        assert report.h2d_bytes >= stack.nbytes
        assert report.d2h_bytes > 0

    def test_pointer3d_transfers_more_bytes(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        _, flat = get_backend("gpusim").reconstruct(stack, default_config.with_backend("gpusim", layout="flat1d"))
        _, ptr = get_backend("gpusim").reconstruct(stack, default_config.with_backend("gpusim", layout="pointer3d"))
        assert ptr.h2d_bytes > flat.h2d_bytes
        assert ptr.transfer_time > flat.transfer_time

    def test_device_memory_is_released(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        device = Device(GENERIC_LAPTOP_GPU)
        from repro.core.backends.gpusim import GpuSimBackend

        backend = GpuSimBackend(device=device)
        backend.reconstruct(stack, default_config.with_backend("gpusim"))
        assert device.memory.used_bytes == 0

    def test_per_thread_launch_mode_matches_vectorized(self, depth_grid):
        # run the faithful per-thread simulated launch on a very small stack
        from tests.helpers import make_tiny_stack
        from repro.core.backends.gpusim import GpuSimBackend

        stack = make_tiny_stack(n_rows=3, n_cols=2, n_positions=7)
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 10), backend="gpusim")
        fast, _ = GpuSimBackend(launch_mode="vectorized").reconstruct(stack, config)
        slow, _ = GpuSimBackend(launch_mode="per_thread").reconstruct(stack, config)
        np.testing.assert_allclose(slow.data, fast.data, rtol=1e-9, atol=1e-12)


class TestBackendHelpers:
    def test_count_active_elements_respects_mask_and_cutoff(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        full = Backend.count_active_elements(stack, default_config)
        masked_stack = stack.with_pixel_mask(np.zeros((stack.n_rows, stack.n_cols), dtype=bool))
        assert Backend.count_active_elements(masked_stack, default_config) == 0
        high_cutoff = default_config.with_overrides(intensity_cutoff=1e12)
        assert Backend.count_active_elements(stack, high_cutoff) == 0
        assert full > 0

    def test_build_kernel_context_row_range_validation(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        with pytest.raises(ValidationError):
            build_kernel_context(stack, default_config, 4, 2)

    def test_build_kernel_context_background_subtraction(self, point_source_stack, default_config):
        stack, _ = point_source_stack
        plain = build_kernel_context(stack, default_config)
        config = default_config.with_overrides(subtract_background=True)
        subtracted = build_kernel_context(stack, config)
        assert not np.allclose(plain.images, subtracted.images) or np.allclose(
            np.median(stack.images, axis=(1, 2)), 0.0
        )

    def test_row_bands_partition(self):
        bands = MultiprocessBackend._row_bands(10, 3)
        assert bands == [(0, 4), (4, 7), (7, 10)]
        covered = [r for start, stop in bands for r in range(start, stop)]
        assert covered == list(range(10))

    def test_row_bands_more_workers_than_rows(self):
        bands = MultiprocessBackend._row_bands(2, 5)
        assert bands == [(0, 1), (1, 2)]

"""Unit tests for noise models and the benchmark workload generator."""

import numpy as np
import pytest

from repro.core.session import session
from repro.synthetic.noise import add_background, add_hot_pixels, apply_poisson
from repro.synthetic.workloads import (
    PAPER_DATASET_SIZES_GB,
    make_benchmark_workload,
    make_grain_sample_stack,
    make_point_source_stack,
)
from repro.utils.validation import ValidationError


class TestNoise:
    def test_poisson_preserves_mean_roughly(self, rng, point_source_stack):
        stack, _ = point_source_stack
        noisy = apply_poisson(stack, rng, scale=10.0)
        assert noisy.images.shape == stack.images.shape
        assert np.isclose(noisy.images.mean(), stack.images.mean(), rtol=0.05)
        assert noisy.metadata["noise"] == "poisson"

    def test_poisson_invalid_scale(self, rng, point_source_stack):
        stack, _ = point_source_stack
        with pytest.raises(ValidationError):
            apply_poisson(stack, rng, scale=0.0)

    def test_background_cancels_in_reconstruction(self, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        with_background = add_background(stack, 123.0)
        sess = session(grid=depth_grid)
        clean = sess.run(stack).result
        shifted = sess.run(with_background).result
        np.testing.assert_allclose(shifted.data, clean.data, rtol=1e-9, atol=1e-9)

    def test_background_negative_rejected(self, point_source_stack):
        stack, _ = point_source_stack
        with pytest.raises(ValidationError):
            add_background(stack, -1.0)

    def test_hot_pixels_masked(self, rng, point_source_stack):
        stack, _ = point_source_stack
        hot = add_hot_pixels(stack, rng, fraction=0.1, amplitude=1e6)
        assert hot.pixel_mask is not None
        n_hot = int(round(0.1 * stack.n_rows * stack.n_cols))
        assert (~hot.pixel_mask).sum() == n_hot
        assert hot.metadata["hot_pixels"] == n_hot

    def test_hot_pixels_do_not_pollute_masked_reconstruction(self, rng, point_source_stack, depth_grid):
        stack, _ = point_source_stack
        hot = add_hot_pixels(stack, rng, fraction=0.1, amplitude=1e6)
        result = session(grid=depth_grid).run(hot).result
        # masked pixels must receive no depth-resolved intensity at all
        masked = ~hot.pixel_mask
        assert np.abs(result.data[:, masked]).sum() == 0.0

    def test_hot_pixel_fraction_validation(self, rng, point_source_stack):
        stack, _ = point_source_stack
        with pytest.raises(ValidationError):
            add_hot_pixels(stack, rng, fraction=1.5)


class TestWorkloads:
    def test_paper_sizes_table(self):
        assert list(PAPER_DATASET_SIZES_GB) == ["2.1G", "2.7G", "3.6G", "5.2G"]

    def test_workload_size_close_to_target(self):
        workload = make_benchmark_workload("2.1G", scale=1.0 / 16384.0)
        assert 0.5 * workload.target_bytes <= workload.actual_bytes <= 2.0 * workload.target_bytes

    def test_size_ratio_preserved(self):
        small = make_benchmark_workload("2.1G", scale=1.0 / 32768.0)
        large = make_benchmark_workload("5.2G", scale=1.0 / 32768.0)
        ratio = large.actual_bytes / small.actual_bytes
        assert 1.7 <= ratio <= 3.4  # paper ratio is 2.48

    def test_explicit_megabyte_target(self):
        workload = make_benchmark_workload("0.2MB")
        assert workload.actual_bytes < 1.0e6

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            make_benchmark_workload("12T")

    def test_pixel_fraction_mask(self):
        workload = make_benchmark_workload("2.1G", pixel_fraction=0.25, scale=1.0 / 32768.0)
        assert workload.stack.pixel_mask is not None
        assert np.isclose(workload.stack.active_pixel_fraction, 0.25, atol=0.02)

    def test_full_fraction_has_no_mask(self):
        workload = make_benchmark_workload("2.1G", pixel_fraction=1.0, scale=1.0 / 32768.0)
        assert workload.stack.pixel_mask is None

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            make_benchmark_workload("2.1G", pixel_fraction=0.0)

    def test_deterministic_given_seed(self):
        a = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, seed=11)
        b = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, seed=11)
        np.testing.assert_array_equal(a.stack.images, b.stack.images)

    def test_different_seeds_differ(self):
        a = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, seed=1)
        b = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, seed=2)
        assert not np.array_equal(a.stack.images, b.stack.images)

    def test_describe_mentions_label(self):
        workload = make_benchmark_workload("2.7G", scale=1.0 / 32768.0)
        assert "2.7G" in workload.describe()

    def test_workload_reconstruction_recovers_truth(self, session_workload):
        workload = session_workload
        result = session(grid=workload.grid, backend="vectorized").run(workload.stack).result
        truth = workload.source.true_centroid_depth()
        recon = result.centroid_depth()
        bright = workload.source.total_image() > 0.1 * workload.source.total_image().max()
        errors = np.abs(recon - truth)[bright]
        errors = errors[np.isfinite(errors)]
        assert errors.size > 0
        assert np.median(errors) < 2.0 * workload.grid.step

    def test_noise_flag(self):
        noisy = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, noise=True)
        clean = make_benchmark_workload("2.1G", scale=1.0 / 32768.0, noise=False)
        assert not np.array_equal(noisy.stack.images, clean.stack.images)


class TestConvenienceStacks:
    def test_point_source_stack(self):
        stack, source = make_point_source_stack(depth=25.0, n_rows=4, n_cols=4, n_positions=41)
        assert stack.shape == (41, 4, 4)
        assert np.isclose(np.nanmean(source.true_centroid_depth()), source.depth_samples[
            np.argmin(np.abs(source.depth_samples - 25.0))])

    def test_grain_sample_stack(self):
        stack, source, sample = make_grain_sample_stack(n_rows=24, n_cols=24, n_grains=2, n_positions=61)
        assert stack.shape == (61, 24, 24)
        assert len(sample.grains) == 2
        assert source.source.shape[1:] == (24, 24)
        assert stack.images.max() > 0

"""Unit tests for image-stack IO, text output and experiment metadata."""

import numpy as np
import pytest

from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack
from repro.io.h5lite import H5LiteError, H5LiteFile
from repro.io.image_stack import (
    load_depth_resolved,
    load_wire_scan,
    save_depth_resolved,
    save_wire_scan,
)
from repro.io.metadata import ExperimentMetadata
from repro.io.text_output import read_depth_profiles, write_depth_profiles

from tests.helpers import make_tiny_stack


class TestWireScanIO:
    def test_roundtrip_preserves_everything(self, tmp_path, point_source_stack):
        stack, _ = point_source_stack
        stack.metadata["note"] = "roundtrip"
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, stack)
        loaded = load_wire_scan(path)

        np.testing.assert_allclose(loaded.images, stack.images)
        np.testing.assert_allclose(loaded.scan.positions, stack.scan.positions)
        assert loaded.scan.wire.radius == stack.scan.wire.radius
        assert loaded.detector.shape == stack.detector.shape
        assert loaded.detector.pixel_size == stack.detector.pixel_size
        assert loaded.detector.distance == stack.detector.distance
        assert tuple(loaded.detector.center) == tuple(stack.detector.center)
        np.testing.assert_allclose(loaded.beam.unit_direction, stack.beam.unit_direction)
        assert loaded.metadata["note"] == "roundtrip"
        assert loaded.pixel_mask is None

    def test_roundtrip_with_pixel_mask(self, tmp_path):
        stack = make_tiny_stack(n_rows=4, n_cols=3)
        mask = np.zeros((4, 3), dtype=bool)
        mask[1, 2] = True
        stack = stack.with_pixel_mask(mask)
        path = tmp_path / "masked.h5lite"
        save_wire_scan(path, stack)
        loaded = load_wire_scan(path)
        np.testing.assert_array_equal(loaded.pixel_mask, mask)

    def test_reconstruction_identical_after_roundtrip(self, tmp_path, point_source_stack, depth_grid):
        from repro.core.session import session

        stack, _ = point_source_stack
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, stack)
        loaded = load_wire_scan(path)
        sess = session(grid=depth_grid)
        original = sess.run(stack).result
        reloaded = sess.run(loaded).result
        np.testing.assert_allclose(reloaded.data, original.data, rtol=1e-12, atol=1e-14)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_group("entry").attrs["format"] = "something-else"
        with pytest.raises(H5LiteError):
            load_wire_scan(path)

    def test_missing_entry_rejected(self, tmp_path):
        path = tmp_path / "empty.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_dataset("misc", np.zeros(1))
        with pytest.raises(H5LiteError):
            load_wire_scan(path)


class TestDepthResolvedIO:
    def test_roundtrip(self, tmp_path):
        grid = DepthGrid.from_range(0.0, 50.0, 10)
        data = np.random.default_rng(2).random((10, 3, 4))
        result = DepthResolvedStack(data=data, grid=grid, metadata={"backend": "vectorized"})
        path = tmp_path / "depth.h5lite"
        save_depth_resolved(path, result)
        loaded = load_depth_resolved(path)
        np.testing.assert_allclose(loaded.data, data)
        assert loaded.grid == grid
        assert loaded.metadata["backend"] == "vectorized"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.h5lite"
        with H5LiteFile(path, "w") as fh:
            fh.create_group("entry").attrs["format"] = "repro-wire-scan"
        with pytest.raises(H5LiteError):
            load_depth_resolved(path)


class TestTextOutput:
    def test_roundtrip_profiles(self, tmp_path):
        grid = DepthGrid.from_range(0.0, 20.0, 8)
        data = np.random.default_rng(3).random((8, 2, 2))
        result = DepthResolvedStack(data=data, grid=grid)
        path = tmp_path / "profiles.txt"
        write_depth_profiles(path, result, [(0, 0), (1, 1)])
        depths, profiles = read_depth_profiles(path)
        np.testing.assert_allclose(depths, grid.centers)
        np.testing.assert_allclose(profiles[(0, 0)], data[:, 0, 0], rtol=1e-9)
        np.testing.assert_allclose(profiles[(1, 1)], data[:, 1, 1], rtol=1e-9)

    def test_file_is_human_readable(self, tmp_path):
        grid = DepthGrid.from_range(0.0, 10.0, 4)
        result = DepthResolvedStack(data=np.ones((4, 1, 1)), grid=grid)
        path = tmp_path / "p.txt"
        write_depth_profiles(path, result, [(0, 0)])
        text = path.read_text()
        assert text.startswith("# repro depth profiles")
        assert "depth_um" in text


class TestExperimentMetadata:
    def test_defaults(self):
        meta = ExperimentMetadata()
        assert "34-ID" in meta.beamline

    def test_dict_roundtrip(self):
        meta = ExperimentMetadata(
            sample_name="Cu indent",
            scan_id="scan_0042",
            exposure_seconds=0.5,
            extra={"detector_gain": 2},
        )
        rebuilt = ExperimentMetadata.from_dict(meta.to_dict())
        assert rebuilt.sample_name == "Cu indent"
        assert rebuilt.scan_id == "scan_0042"
        assert rebuilt.exposure_seconds == 0.5
        assert rebuilt.extra == {"detector_gain": 2}
        assert rebuilt.incident_energy_band_kev == meta.incident_energy_band_kev

    def test_to_dict_is_json_friendly(self):
        import json

        meta = ExperimentMetadata(extra={"note": "x"})
        json.dumps(meta.to_dict())

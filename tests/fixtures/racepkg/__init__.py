"""A fixture package with one deliberately planted data race.

Never imported by the library — it exists so the test suite can prove the
concurrency tooling end-to-end: ``thread-escape`` must flag the unlocked
``TallyBoard.bump_miss`` write reachable from a thread submission
(:mod:`tests.test_concurrency_rules`), and the runtime race sanitizer
must catch the same write dynamically when :func:`racepkg.runner.hammer`
drives it from real threads (:mod:`tests.test_sanitizer`).
"""

from racepkg.board import TallyBoard
from racepkg.runner import hammer

__all__ = ["TallyBoard", "hammer"]

"""The shared object under test: a tally with one unguarded mutation."""

import threading


class TallyBoard:
    """A hit/miss tally shared across worker threads.

    ``hits`` and ``misses`` are both guarded by ``_lock`` in at least one
    method (``record_hit``/``reset``), so the lint rules infer both as
    lock-protected fields — which makes the unlocked write in
    :meth:`bump_miss` the planted violation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    def bump_miss(self) -> None:
        # PLANTED RACE — do not fix: the lint rule and the runtime
        # sanitizer must both keep catching this unguarded read-modify-write
        self.misses += 1

"""Drives the planted race from real threads (the sanitizer's prey)."""

import threading

from racepkg.board import TallyBoard


def hammer(board: TallyBoard, n_threads: int = 4, n_bumps: int = 500) -> None:
    """Bump ``board.misses`` from *n_threads* concurrent threads."""

    def spin() -> None:
        for _ in range(n_bumps):
            board.bump_miss()

    workers = [threading.Thread(target=spin) for _ in range(n_threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

"""Tests for ``repro.staticcheck`` — the repro-lint subsystem.

Each built-in rule gets a tripping fixture and a passing one, suppression
comments are verified to silence (but still record) findings, the JSON
report schema is pinned, the CLI's exit codes are exercised, and the
whole repository source tree must lint clean against the checked-in
``api_snapshot.json`` — the same gate CI runs.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    Finding,
    available_rules,
    build_api_surface,
    diff_surfaces,
    lint_paths,
    iter_python_files,
    register_rule,
    rule_info,
    rules,
    unregister_rule,
    write_snapshot,
)
from repro.staticcheck.apisnapshot import check_snapshot
from repro.staticcheck.cli import main
from repro.staticcheck.model import parse_suppressions
from repro.utils.validation import ValidationError

REPO_ROOT = Path(__file__).resolve().parents[1]

BUILTIN_RULES = {
    "registry-contract",
    "async-purity",
    "resource-lifecycle",
    "kernel-determinism",
    "type-discipline",
    "api-snapshot",
    "lock-discipline",
    "thread-escape",
}


def _lint(tmp_path, source, name="fixture.py", rule_ids=None, snapshot_path=None):
    """Write *source* under tmp_path and lint just that file."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], rule_ids=rule_ids, snapshot_path=snapshot_path)


def _rules_fired(report):
    return {finding.rule for finding in report.gating}


# --------------------------------------------------------------------------- #
class TestRuleRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_RULES <= set(available_rules())

    def test_rules_returns_sorted_infos(self):
        infos = rules()
        assert [info.id for info in infos] == sorted(info.id for info in infos)
        assert all(callable(info.func) for info in infos)

    def test_rule_info_lookup_and_did_you_mean(self):
        assert rule_info("async-purity").scope == "module"
        with pytest.raises(ValidationError, match="did you mean 'async-purity'"):
            rule_info("async-purty")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            @register_rule("async-purity")
            def shadow(ctx):  # pragma: no cover - never runs
                return []

    def test_register_and_unregister_roundtrip(self):
        @register_rule("test-only-rule", severity="info", description="fixture")
        def test_only_rule(ctx):
            yield ctx.finding(ctx.tree, "fires everywhere")

        try:
            assert "test-only-rule" in available_rules()
            assert rule_info("test-only-rule").severity == "info"
        finally:
            unregister_rule("test-only-rule")
        assert "test-only-rule" not in available_rules()
        with pytest.raises(ValidationError, match="unknown"):
            unregister_rule("test-only-rule")

    def test_bare_decorator_kebab_cases_the_name(self):
        @register_rule
        def my_fixture_rule(ctx):  # pragma: no cover - never runs
            return []

        try:
            assert "my-fixture-rule" in available_rules()
        finally:
            unregister_rule("my-fixture-rule")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValidationError, match="severity"):
            @register_rule("bad-severity-rule", severity="fatal")
            def bad(ctx):  # pragma: no cover - never runs
                return []

    def test_custom_rule_runs_through_the_engine(self, tmp_path):
        @register_rule("no-todo-comment", severity="warning")
        def no_todo_comment(ctx):
            for index, line in enumerate(ctx.lines, start=1):
                if "TODO" in line:
                    yield Finding(message="unresolved TODO", line=index, col=0)

        try:
            report = _lint(tmp_path, "x = 1  # TODO later\n",
                           rule_ids=["no-todo-comment"])
        finally:
            unregister_rule("no-todo-comment")
        assert [f.rule for f in report.gating] == ["no-todo-comment"]
        assert report.gating[0].severity == "warning"


# --------------------------------------------------------------------------- #
class TestRegistryContractRule:
    RULE = ["registry-contract"]

    def test_clean_op_passes(self, tmp_path):
        report = _lint(tmp_path, """
            @register_op("peaks")
            def find_peaks(stack, threshold=0.5, labels=("a", "b")):
                return stack
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_nested_registration_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            def install():
                @register_op("late")
                def late_op(stack):
                    return stack
        """, rule_ids=self.RULE)
        assert _rules_fired(report) == {"registry-contract"}
        assert "module-top-level" in report.gating[0].message

    def test_non_json_default_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            @register_op("bad-default")
            def bad_default(stack, mode=object()):
                return stack
        """, rule_ids=self.RULE)
        assert any("JSON-serializable" in f.message for f in report.gating)

    def test_zero_arg_op_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            @register_op("no-args")
            def no_args():
                return None
        """, rule_ids=self.RULE)
        assert any("no positional parameter" in f.message for f in report.gating)

    def test_async_op_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            @register_op("async-op")
            async def async_op(stack):
                return stack
        """, rule_ids=self.RULE)
        assert any("plain function" in f.message for f in report.gating)

    def test_backend_must_be_a_class(self, tmp_path):
        report = _lint(tmp_path, """
            @register_backend("funcback")
            def funcback(config):
                return None
        """, rule_ids=self.RULE)
        assert any("must decorate a class" in f.message for f in report.gating)

    def test_backend_class_passes(self, tmp_path):
        report = _lint(tmp_path, """
            @register_backend("okback")
            class OkBackend:
                pass
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0


# --------------------------------------------------------------------------- #
class TestAsyncPurityRule:
    RULE = ["async-purity"]

    def test_time_sleep_in_async_def_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)
        """, rule_ids=self.RULE)
        assert _rules_fired(report) == {"async-purity"}
        assert "time.sleep" in report.gating[0].message

    def test_builtin_open_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            async def handler(path):
                with open(path) as handle:
                    return handle.read()
        """, rule_ids=self.RULE)
        assert any("`open`" in f.message for f in report.gating)

    def test_bare_future_result_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            async def handler(future):
                return future.result()
        """, rule_ids=self.RULE)
        assert any(".result()" in f.message for f in report.gating)

    def test_result_with_timeout_not_flagged(self, tmp_path):
        # result(timeout=0) is a non-parking poll; only the bare read gates
        report = _lint(tmp_path, """
            async def handler(future):
                return future.result(0)
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_sync_function_not_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            def worker():
                time.sleep(1.0)
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_nested_sync_def_is_a_separate_context(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            async def handler(loop):
                def blocking_probe():
                    time.sleep(1.0)
                return await loop.run_in_executor(None, blocking_probe)
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_asyncio_sleep_passes(self, tmp_path):
        report = _lint(tmp_path, """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0


# --------------------------------------------------------------------------- #
class TestResourceLifecycleRule:
    RULE = ["resource-lifecycle"]

    def test_unreleased_executor_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor

            def run(tasks):
                pool = ThreadPoolExecutor(4)
                return [pool.submit(task) for task in tasks]
        """, rule_ids=self.RULE)
        assert _rules_fired(report) == {"resource-lifecycle"}

    def test_with_statement_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor

            def run(tasks):
                with ThreadPoolExecutor(4) as pool:
                    return [pool.submit(task) for task in tasks]
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_try_finally_release_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from multiprocessing import shared_memory

            def run(nbytes):
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                try:
                    return bytes(segment.buf[:8])
                finally:
                    segment.close()
                    segment.unlink()
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_attribute_assignment_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor

            class Owner:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(2)

                def close(self):
                    self._pool.shutdown()
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_factory_return_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            def make_pool(n):
                return ProcessPoolExecutor(n)
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_exit_stack_adoption_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor

            def run(stack_manager):
                pool = stack_manager.enter_context(ThreadPoolExecutor(2))
                return pool
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0


# --------------------------------------------------------------------------- #
class TestKernelDeterminismRule:
    RULE = ["kernel-determinism"]
    KERNEL = "core/kernels/fixture_kernel.py"

    def test_rule_only_governs_kernel_paths(self, tmp_path):
        source = """
            import time

            def kernel(values):
                return time.perf_counter()
        """
        ungoverned = _lint(tmp_path, source, name="util/helpers.py", rule_ids=self.RULE)
        governed = _lint(tmp_path, source, name=self.KERNEL, rule_ids=self.RULE)
        assert ungoverned.exit_code() == 0
        assert any("clock read" in f.message for f in governed.gating)

    def test_env_read_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            import os

            THREADS = os.getenv("OMP_NUM_THREADS")
        """, name=self.KERNEL, rule_ids=self.RULE)
        assert any("os.getenv" in f.message for f in report.gating)

    def test_unseeded_rng_flagged_seeded_passes(self, tmp_path):
        report = _lint(tmp_path, """
            import numpy as np

            def noisy(shape):
                return np.random.rand(*shape)

            def seeded(shape, seed):
                return np.random.default_rng(seed).random(shape)

            def entropy_seeded(shape):
                return np.random.default_rng().random(shape)
        """, name=self.KERNEL, rule_ids=self.RULE)
        messages = [f.message for f in report.gating]
        assert any("numpy.random.rand" in m for m in messages)
        assert any("without an explicit seed" in m for m in messages)
        assert not any("default_rng` " in m for m in messages)

    def test_set_iteration_flagged_sorted_passes(self, tmp_path):
        report = _lint(tmp_path, """
            def accumulate(values):
                total = 0.0
                for value in set(values):
                    total += value
                for value in sorted(set(values)):
                    total -= value
                return total
        """, name=self.KERNEL, rule_ids=self.RULE)
        assert len(report.gating) == 1
        assert "set()" in report.gating[0].message


# --------------------------------------------------------------------------- #
class TestTypeDisciplineRule:
    RULE = ["type-discipline"]

    def test_none_into_non_optional_annotation_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            class Queue:
                def __init__(self):
                    self._event: "asyncio.Event" = None
        """, rule_ids=self.RULE)
        assert _rules_fired(report) == {"type-discipline"}
        assert "lazy initializer" in report.gating[0].message

    def test_optional_annotation_passes(self, tmp_path):
        report = _lint(tmp_path, """
            from typing import Optional

            class Queue:
                def __init__(self):
                    self._event: Optional[object] = None
        """, rule_ids=self.RULE)
        assert report.exit_code() == 0

    def test_type_ignored_none_assignment_flagged(self, tmp_path):
        report = _lint(tmp_path, """
            class Queue:
                def __init__(self):
                    self._event = None  # type: ignore[assignment]
        """, rule_ids=self.RULE)
        assert any("type: ignore" in f.message for f in report.gating)

    def test_plain_none_assignment_passes(self, tmp_path):
        report = _lint(tmp_path, "state = None\n", rule_ids=self.RULE)
        assert report.exit_code() == 0


# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_parse_same_line_rule_list(self):
        table = parse_suppressions("x = 1  # repro-lint: ignore[a-rule, b-rule]\n")
        assert table == {1: frozenset({"a-rule", "b-rule"})}

    def test_parse_bare_ignore_means_all(self):
        table = parse_suppressions("x = 1  # repro-lint: ignore\n")
        assert table == {1: None}

    def test_standalone_comment_covers_next_line(self):
        table = parse_suppressions(
            "# repro-lint: ignore[a-rule]\nx = 1\n"
        )
        assert table == {2: frozenset({"a-rule"})}

    def test_suppressed_finding_is_recorded_not_gating(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)  # repro-lint: ignore[async-purity]
        """, rule_ids=["async-purity"])
        assert report.exit_code() == 0
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppressed is True
        assert report.suppressed[0].rule == "async-purity"

    def test_suppression_is_rule_specific(self, tmp_path):
        # a waiver for one rule must not blanket others on the same line
        report = _lint(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)  # repro-lint: ignore[resource-lifecycle]
        """, rule_ids=["async-purity"])
        assert report.exit_code() == 1

    def test_standalone_suppression_covers_the_next_line(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            async def handler():
                # repro-lint: ignore[async-purity]
                time.sleep(1.0)
        """, rule_ids=["async-purity"])
        assert report.exit_code() == 0
        assert len(report.suppressed) == 1


# --------------------------------------------------------------------------- #
class TestReportAndEngine:
    def test_json_schema(self, tmp_path):
        report = _lint(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)
                time.sleep(2.0)  # repro-lint: ignore[async-purity]
        """, rule_ids=["async-purity"])
        document = json.loads(report.to_json())
        assert document["tool"] == "repro-lint"
        assert document["rules"] == ["async-purity"]
        assert document["n_files"] == 1
        assert document["summary"] == {
            "gating": 1, "suppressed": 1, "parse_errors": 0,
            "by_severity": {"error": 1},
        }
        (finding,) = document["findings"]
        assert set(finding) == {
            "message", "line", "col", "rule", "severity", "path", "suppressed",
        }
        assert finding["suppressed"] is False
        (waived,) = document["suppressed_findings"]
        assert waived["suppressed"] is True

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        (tmp_path / "b.py").write_text(
            "import time\n\nasync def g():\n    time.sleep(2)\n    time.sleep(1)\n"
        )
        (tmp_path / "a.py").write_text(
            "import time\n\nasync def f():\n    time.sleep(1)\n"
        )
        report = lint_paths([str(tmp_path)], rule_ids=["async-purity"])
        keys = [(f.path, f.line) for f in report.gating]
        assert keys == sorted(keys)

    def test_parse_error_is_a_gating_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        report = lint_paths([str(tmp_path)], rule_ids=["async-purity"])
        assert report.exit_code() == 1
        assert report.gating[0].rule == "parse-error"

    def test_unknown_rule_fails_fast(self, tmp_path):
        with pytest.raises(ValidationError, match="unknown lint rule"):
            lint_paths([str(tmp_path)], rule_ids=["no-such-rule"])

    def test_missing_path_fails_fast(self):
        with pytest.raises(ValidationError, match="no such file"):
            lint_paths(["/no/such/dir"])

    def test_iter_python_files_skips_caches_and_dedups(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-39.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path), str(tmp_path / "mod.py")])
        assert files == [str(tmp_path / "mod.py")]

    def test_render_text_mentions_summary(self, tmp_path):
        report = _lint(tmp_path, "x = 1\n", rule_ids=["async-purity"])
        assert "repro-lint: clean in 1 file(s)" in report.render_text()


# --------------------------------------------------------------------------- #
class TestApiSnapshot:
    def test_surface_is_deterministic(self):
        first = build_api_surface()
        second = build_api_surface()
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert "0x" not in json.dumps(first)

    def test_surface_covers_the_public_package(self):
        import repro

        surface = build_api_surface()
        assert set(surface["symbols"]) == set(repro.__all__) | {"open"}

    def test_fresh_snapshot_is_clean(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(str(path))
        drifts, present = check_snapshot(str(path))
        assert present is True
        assert drifts == []

    def test_missing_snapshot_reports_how_to_create_it(self, tmp_path):
        drifts, present = check_snapshot(str(tmp_path / "absent.json"))
        assert present is False
        assert any("--write-snapshot" in message for message in drifts)

    def test_tampered_snapshot_reports_drift(self, tmp_path):
        path = tmp_path / "snap.json"
        surface = write_snapshot(str(path))
        doctored = json.loads(json.dumps(surface))
        removed = "DepthGrid"
        assert removed in doctored["symbols"]
        del doctored["symbols"][removed]
        doctored["symbols"]["brand_new_thing"] = {"kind": "function", "signature": "()"}
        path.write_text(json.dumps(doctored))
        drifts, present = check_snapshot(str(path))
        assert present is True
        assert any(removed in message for message in drifts)
        assert any("brand_new_thing" in message for message in drifts)

    def test_signature_drift_detected(self, tmp_path):
        path = tmp_path / "snap.json"
        surface = write_snapshot(str(path))
        doctored = json.loads(json.dumps(surface))
        name = next(
            symbol for symbol, info in sorted(doctored["symbols"].items())
            if info.get("signature")
        )
        doctored["symbols"][name]["signature"] = "(totally, different)"
        drifts = diff_surfaces(doctored, surface)
        assert any(name in message and "signature" in message for message in drifts)

    def test_snapshot_rule_gates_through_the_engine(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = lint_paths(
            [str(tmp_path)],
            rule_ids=["api-snapshot"],
            snapshot_path=str(tmp_path / "absent.json"),
        )
        assert report.exit_code() == 1
        assert report.gating[0].rule == "api-snapshot"

    def test_snapshot_rule_skipped_without_a_path(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = lint_paths([str(tmp_path)], rule_ids=["api-snapshot"])
        assert report.exit_code() == 0


# --------------------------------------------------------------------------- #
class TestCli:
    def _write_dirty(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "import time\n\nasync def handler():\n    time.sleep(1.0)\n"
        )
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--no-snapshot"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        assert main([path, "--no-snapshot"]) == 1
        out = capsys.readouterr().out
        assert "async-purity" in out and "dirty.py:4" in out

    def test_json_format_parses(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        assert main([path, "--format", "json", "--no-snapshot"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["gating"] == 1

    def test_rules_filter(self, tmp_path):
        path = self._write_dirty(tmp_path)
        assert main([path, "--rules", "type-discipline", "--no-snapshot"]) == 0

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        path = self._write_dirty(tmp_path)
        assert main([path, "--rules", "nope", "--no-snapshot"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in BUILTIN_RULES:
            assert rule_id in out

    def test_list_rules_json(self, capsys):
        assert main(["--list-rules", "--format", "json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert BUILTIN_RULES <= {entry["id"] for entry in table}

    def test_no_paths_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_write_snapshot(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--write-snapshot"]) == 0
        assert "wrote api_snapshot.json" in capsys.readouterr().out
        drifts, present = check_snapshot(str(tmp_path / "api_snapshot.json"))
        assert present and drifts == []

    def test_snapshot_gate_via_cli(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = main([
            str(tmp_path), "--snapshot", str(tmp_path / "absent.json"),
        ])
        assert code == 1
        assert "api-snapshot" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
class TestLintMemo:
    DIRTY = "import time\n\nasync def handler():\n    time.sleep(1.0)\n"

    def _memo(self, tmp_path):
        from repro.staticcheck import LintMemo

        return LintMemo(root=str(tmp_path / "memo"))

    def test_hit_reproduces_the_cold_report(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(self.DIRTY)
        memo = self._memo(tmp_path)
        cold = lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        warm = lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        assert memo.counters() == {"n_hits": 1, "n_misses": 1, "n_stores": 1}
        assert [f.to_dict() for f in warm.gating] == [
            f.to_dict() for f in cold.gating
        ]

    def test_hit_restamps_the_current_path(self, tmp_path):
        # same bytes at a new location re-use the entry with the new path
        first = tmp_path / "a.py"
        second = tmp_path / "b" / "moved.py"
        second.parent.mkdir()
        first.write_text(self.DIRTY)
        second.write_text(self.DIRTY)
        memo = self._memo(tmp_path)
        lint_paths([str(first)], rule_ids=["async-purity"], memo=memo)
        warm = lint_paths([str(second)], rule_ids=["async-purity"], memo=memo)
        assert memo.n_hits == 1
        assert warm.gating[0].path == str(second)

    def test_content_change_misses(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.DIRTY)
        memo = self._memo(tmp_path)
        lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        path.write_text(self.DIRTY + "\nx = 1\n")
        report = lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        assert memo.n_hits == 0 and memo.n_misses == 2
        assert report.exit_code() == 1

    def test_rule_set_change_misses(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.DIRTY)
        memo = self._memo(tmp_path)
        lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        lint_paths([str(path)], rule_ids=["type-discipline"], memo=memo)
        assert memo.n_hits == 0

    def test_suppressed_findings_survive_the_memo(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n\nasync def handler():\n"
            "    time.sleep(1.0)  # repro-lint: ignore[async-purity]\n"
        )
        memo = self._memo(tmp_path)
        lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        warm = lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        assert memo.n_hits == 1
        assert warm.exit_code() == 0
        assert [f.rule for f in warm.suppressed] == ["async-purity"]
        assert warm.suppressed[0].path == str(path)

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(self.DIRTY)
        memo = self._memo(tmp_path)
        lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        for entry in (tmp_path / "memo").rglob("*.json"):
            entry.write_text("{ not json")
        report = lint_paths([str(path)], rule_ids=["async-purity"], memo=memo)
        assert report.exit_code() == 1  # relinted live, same verdict

    def test_project_rules_run_live_on_memo_hits(self, tmp_path):
        # a memo hit must not skip the parse project rules depend on
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(textwrap.dedent("""
            import threading

            _TICKS = 0

            def tick():
                global _TICKS
                _TICKS += 1

            def run():
                threading.Thread(target=tick).start()
        """))
        memo = self._memo(tmp_path)
        rule_ids = ["async-purity", "thread-escape"]
        cold = lint_paths([str(pkg)], rule_ids=rule_ids, memo=memo)
        warm = lint_paths([str(pkg)], rule_ids=rule_ids, memo=memo)
        assert memo.n_hits == 2  # both files hit on the second run
        assert {f.rule for f in cold.gating} == {"thread-escape"}
        assert [f.to_dict() for f in warm.gating] == [
            f.to_dict() for f in cold.gating
        ]


# --------------------------------------------------------------------------- #
class TestCliChangedOnly:
    def _git(self, tmp_path, *args):
        import subprocess

        return subprocess.run(
            ["git", *args], cwd=str(tmp_path), capture_output=True,
            text=True, check=True,
        )

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "config", "user.email", "t@example.com")
        self._git(tmp_path, "config", "user.name", "t")
        (tmp_path / "clean.py").write_text("x = 1\n")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_only_changed_files_are_linted(self, tmp_path, capsys, monkeypatch):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "clean.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(1.0)\n"
        )
        (repo / "untouched.py").write_text("x = 2\n")
        self._git(repo, "add", "untouched.py")
        self._git(repo, "commit", "-qm", "untouched")
        assert main([".", "--changed-only", "--no-memo", "--no-snapshot"]) == 1
        out = capsys.readouterr().out
        assert "clean.py" in out and "1 file(s)" in out

    def test_untracked_files_are_included(self, tmp_path, capsys, monkeypatch):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "fresh.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(1.0)\n"
        )
        assert main([".", "--changed-only", "--no-memo", "--no-snapshot"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_no_changes_exits_zero_with_note(self, tmp_path, capsys, monkeypatch):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        assert main([".", "--changed-only", "--no-memo", "--no-snapshot"]) == 0
        assert "no changed python files" in capsys.readouterr().err

    def test_project_rules_are_skipped_with_a_note(self, tmp_path, capsys,
                                                   monkeypatch):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "fresh.py").write_text("x = 3\n")
        assert main([".", "--changed-only", "--no-memo"]) == 0
        err = capsys.readouterr().err
        assert "skips project-scope" in err
        assert "thread-escape" in err and "api-snapshot" in err

    def test_outside_a_repo_is_a_usage_error(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-gitdir"))
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main([".", "--changed-only", "--no-memo", "--no-snapshot"]) == 2
        assert "working git checkout" in capsys.readouterr().err

    def test_cli_memo_round_trip(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "dirty.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(1.0)\n"
        )
        memo_root = str(tmp_path / "memo")
        argv = [str(tmp_path), "--no-snapshot", "--rules", "async-purity",
                "--memo-root", memo_root]
        assert main(argv) == 1
        first = capsys.readouterr().out
        assert main(argv) == 1
        second = capsys.readouterr().out
        assert first == second

    def test_write_callgraph_cli(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "cg.json"
        fixture = REPO_ROOT / "tests" / "fixtures" / "racepkg"
        assert main(["--write-callgraph", str(target), str(fixture)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(target.read_text())
        assert document["tool"] == "repro-callgraph"


# --------------------------------------------------------------------------- #
class TestFullCorpus:
    """The repository's own source tree is the ultimate fixture."""

    def test_src_lints_clean_against_checked_in_snapshot(self):
        report = lint_paths(
            [str(REPO_ROOT / "src")],
            snapshot_path=str(REPO_ROOT / "api_snapshot.json"),
        )
        assert report.gating == [], report.render_text()
        # every waiver in the tree names a real rule at a deliberate site
        assert report.suppressed, "expected the documented deliberate waivers"
        assert {f.rule for f in report.suppressed} <= BUILTIN_RULES

    def test_checked_in_snapshot_is_current(self):
        snapshot_path = REPO_ROOT / "api_snapshot.json"
        drifts, present = check_snapshot(str(snapshot_path))
        assert present is True
        assert drifts == [], "\n".join(drifts)

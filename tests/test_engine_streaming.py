"""Engine, out-of-core streaming and batch-scheduler tests.

The load-bearing guarantee of the engine refactor: a streamed reconstruction
(any ``rows_per_chunk``, any backend, with or without background subtraction
and pixel masks) is **bitwise identical** to the in-memory reconstruction,
and never materialises the full image cube.
"""

import os
import signal
from concurrent.futures import BrokenExecutor
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import get_backend
from repro.core.backends.multiprocess import MultiprocessExecutor
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import (
    StackChunkSource,
    build_execution_plan,
    compute_stack_background,
    execute as engine_execute,
    execute_backend,
)
from repro.core.session import _output_names, session
from repro.core.workerpool import shutdown_shared_pool
from repro.io.image_stack import (
    load_depth_resolved,
    load_wire_scan,
    load_wire_scan_window,
    read_wire_scan_geometry,
    save_wire_scan,
)
from repro.io.streaming import StreamingWireScanSource
from repro.utils.validation import ValidationError
from tests.helpers import make_tiny_stack

ALL_BACKENDS = ("cpu_reference", "vectorized", "gpusim", "multiprocess")


def _noisy_stack(n_rows=7, n_cols=5, n_positions=17, masked=False, seed=11):
    """A small stack with per-pixel structure (so chunking bugs cannot hide)."""
    stack = make_tiny_stack(n_rows=n_rows, n_cols=n_cols, n_positions=n_positions)
    rng = np.random.default_rng(seed)
    stack.images = stack.images + rng.random(stack.images.shape) * 5.0
    if masked:
        stack.pixel_mask = rng.random((n_rows, n_cols)) > 0.3
    return stack


@pytest.fixture()
def scan_file(tmp_path):
    stack = _noisy_stack(masked=True)
    path = tmp_path / "scan.h5lite"
    save_wire_scan(path, stack)
    return str(path), stack


# --------------------------------------------------------------------------- #
class TestStreamedEqualsInMemory:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("rows_per_chunk", [1, 3, None])
    def test_bitwise_identical(self, tmp_path, backend, rows_per_chunk):
        stack = _noisy_stack(masked=True)
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, stack)
        config = ReconstructionConfig(
            grid=DepthGrid.from_range(0.0, 100.0, 20),
            backend=backend,
            rows_per_chunk=rows_per_chunk,
            subtract_background=True,
        )
        in_memory = session(config=config).run(str(path))
        streamed = session(config=config.with_overrides(streaming=True)).run(str(path))
        np.testing.assert_array_equal(streamed.result.data, in_memory.result.data)
        assert streamed.report.n_chunks == in_memory.report.n_chunks

    @settings(max_examples=12, deadline=None)
    @given(
        rows_per_chunk=st.integers(1, 9),
        subtract_background=st.booleans(),
        masked=st.booleans(),
        backend=st.sampled_from(["vectorized", "gpusim"]),
    )
    def test_any_chunking_matches_unchunked(
        self, tmp_path_factory, rows_per_chunk, subtract_background, masked, backend
    ):
        """Streamed with *any* chunk size == in-memory with a single chunk."""
        stack = _noisy_stack(n_rows=8, masked=masked, seed=5)
        path = tmp_path_factory.mktemp("hyp") / "scan.h5lite"
        save_wire_scan(path, stack)
        grid = DepthGrid.from_range(0.0, 100.0, 16)
        reference = session(
            grid=grid, backend=backend, subtract_background=subtract_background
        ).run(stack).result
        config = ReconstructionConfig(
            grid=grid,
            backend=backend,
            rows_per_chunk=rows_per_chunk,
            subtract_background=subtract_background,
            streaming=True,
        )
        streamed = session(config=config).run(str(path))
        np.testing.assert_array_equal(streamed.result.data, reference.data)

    def test_streamed_background_matches_every_backend(self, scan_file):
        """With subtract_background on, all four backends agree bit-for-bit
        (the old per-chunk median made gpusim/multiprocess diverge)."""
        path, _stack = scan_file
        grid = DepthGrid.from_range(0.0, 100.0, 18)
        results = {}
        for backend in ALL_BACKENDS:
            config = ReconstructionConfig(
                grid=grid, backend=backend, rows_per_chunk=2,
                subtract_background=True, streaming=True,
            )
            results[backend] = session(config=config).run(path).result.data
        reference = results["cpu_reference"]
        for backend in ALL_BACKENDS[1:]:
            np.testing.assert_allclose(results[backend], reference, rtol=1e-9, atol=1e-12)


class TestOutOfCore:
    def test_peak_resident_slab_is_one_chunk(self, scan_file):
        path, stack = scan_file
        config = ReconstructionConfig(
            grid=DepthGrid.from_range(0.0, 100.0, 20), backend="vectorized",
            rows_per_chunk=2,
        )
        source = StreamingWireScanSource(path)
        result, report = execute_backend(source, config)
        accounting = source.accounting()
        assert accounting["max_resident_rows"] == 2  # never a full-cube read
        assert accounting["n_window_reads"] == report.n_chunks == 4  # ceil(7 / 2)
        assert result.total_intensity() > 0

    def test_default_streaming_plan_is_bounded(self, scan_file, monkeypatch):
        """Without rows_per_chunk, an out-of-core run must still chunk once the
        cube exceeds the streaming slab budget (never one full-cube read)."""
        import repro.core.engine as engine_module

        path, stack = scan_file
        monkeypatch.setattr(engine_module, "STREAMING_CHUNK_BYTES", 4_000)
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 20))
        for backend in ("vectorized", "multiprocess"):
            source = StreamingWireScanSource(path)
            result, report = execute_backend(source, config.with_backend(backend))
            assert report.n_chunks > 1
            assert source.accounting()["max_resident_rows"] < stack.n_rows
            reference = session(config=config.with_backend(backend)).run(path)
            np.testing.assert_array_equal(result.data, reference.result.data)

    def test_streaming_source_geometry_matches_file(self, scan_file):
        path, stack = scan_file
        source = StreamingWireScanSource(path)
        assert (source.n_positions, source.n_rows, source.n_cols) == stack.shape
        np.testing.assert_allclose(source.wire_positions_yz, stack.scan.positions)
        np.testing.assert_array_equal(source.mask_rows(0, stack.n_rows), stack.pixel_mask)
        np.testing.assert_array_equal(source.load_rows(2, 5), stack.images[:, 2:5, :])
        np.testing.assert_array_equal(source.position_image(3), stack.images[3])

    def test_streaming_report_notes_mention_streaming(self, scan_file):
        path, _stack = scan_file
        config = ReconstructionConfig(
            grid=DepthGrid.from_range(0.0, 100.0, 10), rows_per_chunk=3, streaming=True
        )
        outcome = session(config=config).run(path)
        assert any("streamed from disk" in note for note in outcome.report.notes)
        assert any(note.startswith("plan[") for note in outcome.report.notes)

    def test_load_wire_scan_window(self, scan_file):
        path, stack = scan_file
        window = load_wire_scan_window(path, 2, 6)
        np.testing.assert_array_equal(window.images, stack.images[:, 2:6, :])
        np.testing.assert_array_equal(window.pixel_mask, stack.pixel_mask[2:6])
        assert window.detector.n_rows == 4
        # the window's rows keep their absolute lab-frame geometry
        full = load_wire_scan(path)
        np.testing.assert_allclose(
            window.detector.row_yz(), full.detector.row_yz(np.arange(2, 6))
        )

    def test_read_wire_scan_geometry_reads_no_images(self, scan_file):
        path, stack = scan_file
        scan, detector, beam, metadata = read_wire_scan_geometry(path)
        assert detector.shape == (stack.n_rows, stack.n_cols)
        assert scan.n_points == stack.n_positions


# --------------------------------------------------------------------------- #
class TestEngine:
    def test_all_backends_share_engine_plan_note(self, scan_file):
        path, stack = scan_file
        grid = DepthGrid.from_range(0.0, 100.0, 12)
        for backend in ALL_BACKENDS:
            config = ReconstructionConfig(grid=grid, backend=backend, rows_per_chunk=3)
            _, report = get_backend(backend).reconstruct(stack, config)
            assert any(note.startswith("plan[") for note in report.notes), backend
            assert report.n_chunks == 3  # ceil(7 / 3): identical chunking everywhere

    def test_global_background_shared_across_chunkings(self):
        stack = _noisy_stack()
        config = ReconstructionConfig(
            grid=DepthGrid.from_range(0.0, 100.0, 10), subtract_background=True
        )
        background = compute_stack_background(StackChunkSource(stack), config)
        assert background.shape == (stack.n_positions, 1, 1)
        np.testing.assert_allclose(
            background[:, 0, 0], np.median(stack.images, axis=(1, 2))
        )
        # chunked gpusim == unchunked vectorized with background on
        chunked, _ = get_backend("gpusim").reconstruct(
            stack, config.with_backend("gpusim", rows_per_chunk=2)
        )
        unchunked, _ = get_backend("vectorized").reconstruct(
            stack, config.with_backend("vectorized")
        )
        np.testing.assert_allclose(chunked.data, unchunked.data, rtol=1e-9, atol=1e-12)

    def test_host_backends_honour_rows_per_chunk(self):
        stack = _noisy_stack()
        grid = DepthGrid.from_range(0.0, 100.0, 10)
        for backend in ("cpu_reference", "vectorized"):
            one_chunk, rep_a = get_backend(backend).reconstruct(
                stack, ReconstructionConfig(grid=grid, backend=backend)
            )
            chunked, rep_b = get_backend(backend).reconstruct(
                stack, ReconstructionConfig(grid=grid, backend=backend, rows_per_chunk=2)
            )
            assert rep_a.n_chunks == 1 and rep_b.n_chunks == 4
            np.testing.assert_array_equal(chunked.data, one_chunk.data)

    def test_execution_plan_summary_and_chunks(self):
        stack = _noisy_stack()
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 10), rows_per_chunk=3)
        plan = build_execution_plan(StackChunkSource(stack), config, strategy="host")
        assert plan.chunks == ((0, 3), (3, 6), (6, 7))
        assert plan.n_chunks == 3 and plan.rows_per_chunk == 3
        assert plan.summary().startswith("plan[host]")
        assert plan.chunk_plan.covers_all_rows()

    def test_compare_backends_validates_up_front(self, scan_file):
        _path, stack = scan_file
        sess = session(grid=DepthGrid.from_range(0.0, 100.0, 10))
        with pytest.raises(ValidationError):
            sess.compare(stack, ["vectorized", "no-such-backend"])

    def test_compare_backends_notes_shared_plan(self, scan_file):
        _path, stack = scan_file
        sess = session(
            grid=DepthGrid.from_range(0.0, 100.0, 10), rows_per_chunk=2
        )
        results = sess.compare(stack, ["vectorized", "gpusim"])
        for _name, run in results.items():
            assert any("compare_backends shared plan:" in note for note in run.report.notes)
        # without a fixed chunk size the note must not claim shared chunking
        loose = session(grid=DepthGrid.from_range(0.0, 100.0, 10))
        results = loose.compare(stack, ["vectorized", "multiprocess"])
        for _name, run in results.items():
            (note,) = [n for n in run.report.notes if "compare_backends" in n]
            assert "reference plan" in note and "may chunk differently" in note

    def test_differences_cached(self):
        stack = _noisy_stack()
        first = stack.differences(cached=True)
        assert stack.differences(cached=True) is first
        assert not first.flags.writeable
        # the uncached path still returns a fresh, writable cube
        fresh = stack.differences()
        assert fresh is not first and fresh.flags.writeable
        np.testing.assert_array_equal(fresh, first)


# --------------------------------------------------------------------------- #
def _kill_worker(payload):  # pragma: no cover - runs (briefly) in a child process
    """Stand-in worker that dies mid-band, as a segfaulting kernel would."""
    os.kill(os.getpid(), signal.SIGKILL)


class TestMultiprocessParallel:
    """Shared-memory dispatch, in-flight bounds, and crash hygiene."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self):
        shutdown_shared_pool()
        yield
        shutdown_shared_pool()

    def _config(self, **overrides):
        base = {
            "grid": DepthGrid.from_range(0.0, 100.0, 14),
            "backend": "multiprocess",
            "n_workers": 2,
        }
        base.update(overrides)
        return ReconstructionConfig(**base)

    def test_streamed_shm_dispatch_stays_one_chunk_resident(self, scan_file):
        """Satellite: under shm dispatch a streamed run still holds only one
        chunk slab from the file, and matches the in-memory run bitwise."""
        path, _stack = scan_file
        config = self._config(rows_per_chunk=2, streaming=True)
        source = StreamingWireScanSource(path)
        executor = MultiprocessExecutor(dispatch="shm")
        result, report = engine_execute(source, config, executor)
        assert executor.dispatch == "shm"
        assert source.accounting()["max_resident_rows"] == 2
        assert report.n_chunks == 4  # ceil(7 / 2)
        in_memory = session(config=config.with_overrides(streaming=False)).run(path)
        np.testing.assert_array_equal(result.data, in_memory.result.data)

    def test_inflight_bound_holds(self):
        """Satellite: the executor admits at most max_inflight pending slabs
        (the old `>` admitted max_inflight + 1)."""
        stack = _noisy_stack(n_rows=12, seed=3)
        config = self._config(rows_per_chunk=1)
        executor = MultiprocessExecutor(dispatch="shm")
        result, report = engine_execute(StackChunkSource(stack), config, executor)
        assert report.n_chunks == 12
        assert executor._max_inflight == 4  # 2 * n_workers
        assert 0 < executor.peak_inflight <= executor._max_inflight
        # one input + one output slab per in-flight chunk, nothing more
        assert executor.arena.peak_leased <= 2 * executor._max_inflight
        assert result.total_intensity() > 0

    def test_shm_segments_unlinked_after_close(self):
        """Satellite: no /dev/shm entry survives a completed run."""
        stack = _noisy_stack(seed=7)
        executor = MultiprocessExecutor(dispatch="shm")
        engine_execute(StackChunkSource(stack), self._config(), executor)
        arena = executor.arena
        assert arena is not None and arena.closed
        assert arena.created_names  # shm dispatch actually happened
        for name in arena.created_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_chunk_failure_closes_executor_and_cancels_pending(self):
        """Satellite: a chunk raising mid-run must not leak segments or block
        on (or keep) the still-pending futures."""

        class ExplodingSource(StackChunkSource):
            def __init__(self, stack, fail_at):
                super().__init__(stack)
                self.fail_at = fail_at
                self.loads = 0

            def load_rows(self, row_start, row_stop):
                self.loads += 1
                if self.loads > self.fail_at:
                    raise RuntimeError("disk died mid-run")
                return super().load_rows(row_start, row_stop)

        stack = _noisy_stack(n_rows=10, seed=9)
        source = ExplodingSource(stack, fail_at=5)
        executor = MultiprocessExecutor(dispatch="shm")
        with pytest.raises(RuntimeError, match="disk died"):
            engine_execute(source, self._config(rows_per_chunk=1), executor)
        assert not executor._pending  # nothing left pending after the failure
        assert executor.arena is not None and executor.arena.closed
        for name in executor.arena.created_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_killed_worker_leaks_nothing_and_pool_recovers(self, monkeypatch):
        """Satellite: a worker dying mid-band (SIGKILL) must leave no shm
        segment behind, and the persistent pool must lazily re-init so the
        next run succeeds."""
        stack = _noisy_stack(seed=13)
        config = self._config()
        monkeypatch.setattr(
            "repro.core.backends.multiprocess._worker_reconstruct_rows", _kill_worker
        )
        executor = MultiprocessExecutor(dispatch="shm")
        with pytest.raises(BrokenExecutor):
            engine_execute(StackChunkSource(stack), config, executor)
        assert executor.arena is not None and executor.arena.closed
        for name in executor.arena.created_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        monkeypatch.undo()
        # the crash marked the shared pool broken; the next run respawns it
        recovered = session(config=config).run(stack)
        reference = session(config=config.with_backend("vectorized")).run(stack)
        np.testing.assert_array_equal(recovered.result.data, reference.result.data)

    @pytest.mark.parametrize("streaming", [False, True])
    def test_batched_multiprocess_matches_reference(self, tmp_path, streaming):
        """Bitwise identity holds through run_many too (shm dispatch, both
        in-memory and streamed), not just single runs."""
        paths = []
        for index in range(2):
            stack = _noisy_stack(seed=30 + index)
            path = tmp_path / f"scan_{index}.h5lite"
            save_wire_scan(path, stack)
            paths.append(str(path))
        config = self._config(streaming=streaming, rows_per_chunk=2)
        batch = session(config=config).run_many(paths, max_workers=2)
        assert batch.n_ok == 2
        for path, item in zip(paths, batch.items):
            reference = session(
                config=config.with_backend("vectorized", streaming=False)
            ).run(path)
            np.testing.assert_array_equal(item.result.data, reference.result.data)

    def test_run_many_memory_budget_clamps_concurrency(self, tmp_path):
        """A batch whose items dwarf the budget degrades to serial, not OOM."""
        stack = _noisy_stack(seed=40)
        path = tmp_path / "scan.h5lite"
        save_wire_scan(path, stack)
        paths = [str(path)] * 3
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 14))
        clamped = session(config=config).run_many(paths, max_workers=3, memory_budget=1)
        assert clamped.max_workers == 1 and clamped.n_ok == 3
        roomy = session(config=config).run_many(paths, max_workers=3)
        assert roomy.max_workers == 3
        for a, b in zip(clamped.items, roomy.items):
            np.testing.assert_array_equal(a.result.data, b.result.data)


# --------------------------------------------------------------------------- #
class TestBatch:
    def _make_files(self, tmp_path, n=3):
        paths = []
        for index in range(n):
            stack = _noisy_stack(seed=20 + index)
            path = tmp_path / f"scan_{index}.h5lite"
            save_wire_scan(path, stack)
            paths.append(str(path))
        return paths

    def test_batch_processes_files_concurrently(self, tmp_path):
        paths = self._make_files(tmp_path, n=3)
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12), streaming=True)
        batch = session(config=config).run_many(paths, max_workers=3)
        assert batch.n_files == 3 and batch.n_ok == 3 and batch.n_failed == 0
        assert batch.max_workers == 3
        assert [item.input_path for item in batch.items] == paths
        for item in batch.items:
            assert item.ok and item.report is not None and item.result is not None
            assert item.result.total_intensity() > 0
        assert batch.throughput_files_per_second > 0

    def test_batch_matches_single_file_runs(self, tmp_path):
        paths = self._make_files(tmp_path, n=3)
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many(paths, max_workers=2)
        for path, item in zip(paths, batch.items):
            solo = session(config=config).run(path)
            np.testing.assert_array_equal(item.result.data, solo.result.data)

    def test_batch_error_isolation(self, tmp_path):
        paths = self._make_files(tmp_path, n=2)
        bad = tmp_path / "broken.h5lite"
        bad.write_bytes(b"not an h5lite file at all")
        scheduled = [paths[0], str(bad), paths[1]]
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many(scheduled, max_workers=3)
        assert batch.n_files == 3 and batch.n_ok == 2 and batch.n_failed == 1
        (failure,) = batch.failed
        assert failure.input_path == str(bad)
        assert "H5LiteError" in failure.error
        for item in batch.succeeded:
            assert item.result.total_intensity() > 0

    def test_batch_writes_outputs(self, tmp_path):
        paths = self._make_files(tmp_path, n=2)
        out_dir = tmp_path / "out"
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many(paths, output_dir=str(out_dir), keep_results=False)
        for item in batch.items:
            assert item.ok and item.result is None
            loaded = load_depth_resolved(item.output_path)
            assert loaded.grid.n_bins == 12
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "scan_0_depth.h5lite",
            "scan_1_depth.h5lite",
        ]

    def test_empty_batch(self):
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many([])
        assert batch.n_files == 0 and batch.wall_time == 0.0
        assert batch.summary().startswith("batch: 0/0")

    def test_batch_summary_mentions_failures(self, tmp_path):
        bad = tmp_path / "missing.h5lite"
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many([str(bad)])
        assert batch.n_failed == 1
        assert "FAIL" in batch.summary()

    def test_batch_disambiguates_colliding_output_names(self, tmp_path):
        stack = _noisy_stack()
        dirs = []
        for sub in ("a", "b"):
            d = tmp_path / sub
            d.mkdir()
            save_wire_scan(d / "scan.h5lite", stack)
            dirs.append(str(d / "scan.h5lite"))
        out_dir = tmp_path / "out"
        config = ReconstructionConfig(grid=DepthGrid.from_range(0.0, 100.0, 12))
        batch = session(config=config).run_many(dirs, output_dir=str(out_dir), keep_results=False)
        assert batch.n_ok == 2
        outputs = {item.output_path for item in batch.items}
        assert len(outputs) == 2  # no silent overwrite
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "scan_1_depth.h5lite",
            "scan_depth.h5lite",
        ]

    def test_batch_output_suffix_never_collides_with_real_stem(self, tmp_path):
        """A stem ending in _1 must not be clobbered by a collision suffix."""
        stems = ["a", "a", "a_1"]  # e.g. d1/a.h5lite, d2/a.h5lite, d3/a_1.h5lite
        names = [p.split("/")[-1] for p in _output_names(stems, "out")]
        assert names == ["a_depth.h5lite", "a_1_depth.h5lite", "a_1_1_depth.h5lite"]
        assert len(set(names)) == 3

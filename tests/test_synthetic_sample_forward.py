"""Unit tests for the synthetic sample models and the wire-scan forward model."""

import numpy as np
import pytest

from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.wire import Wire
from repro.synthetic.forward_model import (
    design_scan_for_depth_range,
    simulate_wire_scan,
    visibility_matrix,
)
from repro.synthetic.sample import DepthSourceField, Grain, GrainSample
from repro.utils.validation import ValidationError


@pytest.fixture()
def detector():
    return Detector(n_rows=6, n_cols=4, pixel_size=200.0, distance=510_000.0)


@pytest.fixture()
def depth_samples():
    return np.linspace(0.0, 100.0, 50, endpoint=False) + 1.0


class TestDepthSourceField:
    def test_point_source_construction(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 40.0, depth_samples, intensity=10.0)
        assert field.n_depths == 50
        assert field.source.sum() == pytest.approx(10.0 * detector.n_pixels)

    def test_true_centroid_depth(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 40.0, depth_samples)
        centroid = field.true_centroid_depth()
        nearest = depth_samples[np.argmin(np.abs(depth_samples - 40.0))]
        np.testing.assert_allclose(centroid[np.isfinite(centroid)], nearest)

    def test_total_image(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 40.0, depth_samples, intensity=5.0)
        np.testing.assert_allclose(field.total_image(), 5.0)

    def test_validation(self, detector, depth_samples):
        with pytest.raises(ValidationError):
            DepthSourceField(depth_samples=depth_samples[::-1], source=np.zeros((50, 6, 4)))
        with pytest.raises(ValidationError):
            DepthSourceField(depth_samples=depth_samples, source=np.zeros((10, 6, 4)))
        with pytest.raises(ValidationError):
            DepthSourceField(depth_samples=depth_samples, source=-np.ones((50, 6, 4)))

    def test_depth_range(self, depth_samples, detector):
        field = DepthSourceField.point_source(detector, 40.0, depth_samples)
        lo, hi = field.depth_range
        assert lo == depth_samples[0] and hi == depth_samples[-1]


class TestGrainSample:
    def test_grain_validation(self):
        with pytest.raises(ValidationError):
            Grain(depth_start=10.0, depth_stop=5.0, orientation=None)

    def test_random_column_fills_range(self, rng):
        sample = GrainSample.random_column("Cu", 4, (0.0, 100.0), rng)
        assert len(sample.grains) == 4
        boundaries = sample.true_grain_boundaries()
        assert boundaries[0] == 0.0 and boundaries[-1] == 100.0
        total = sum(g.thickness for g in sample.grains)
        assert np.isclose(total, 100.0)

    def test_material_symbol_resolved(self, rng):
        sample = GrainSample.random_column("Si", 2, (0.0, 50.0), rng)
        assert sample.material.name == "Si"

    def test_empty_grain_list_rejected(self):
        with pytest.raises(ValidationError):
            GrainSample(material="Cu", grains=[])

    def test_to_source_field_emits_from_grain_depths(self, rng):
        detector = Detector(n_rows=48, n_cols=48, pixel_size=8000.0, distance=510_000.0)
        sample = GrainSample.random_column("Cu", 2, (0.0, 100.0), rng)
        depth_samples = np.linspace(0.0, 100.0, 64, endpoint=False) + 0.5
        field = sample.to_source_field(detector, Beam(), depth_samples)
        assert field.source.shape == (64, 48, 48)
        assert field.source.sum() > 0
        # every depth sample with emission must lie inside some grain interval
        per_depth = field.source.sum(axis=(1, 2))
        emitting = depth_samples[per_depth > 1e-12]
        for depth in emitting:
            assert any(g.depth_start - 1.0 <= depth <= g.depth_stop + 1.0 for g in sample.grains)


class TestVisibilityMatrix:
    def test_shape_and_range(self, detector, depth_samples):
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=21)
        vis = visibility_matrix(scan, detector, depth_samples)
        assert vis.shape == (21, detector.n_rows, 50)
        assert np.all((vis >= 0) & (vis <= 1))

    def test_wire_far_away_everything_visible(self, detector, depth_samples):
        from repro.geometry.scan import WireScan

        scan = WireScan.linear(wire=Wire(radius=26.0), n_points=3, height=1500.0,
                               z_start=500_000.0, z_stop=500_100.0)
        vis = visibility_matrix(scan, detector, depth_samples)
        np.testing.assert_allclose(vis, 1.0)

    def test_each_depth_gets_occluded_somewhere_in_scan(self, detector, depth_samples):
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=101)
        vis = visibility_matrix(scan, detector, depth_samples)
        # for every (row, depth), at least one wire position blocks the ray
        blocked_somewhere = (vis < 0.5).any(axis=0)
        assert blocked_somewhere.all()

    def test_subpixel_gives_fractional_values(self, detector, depth_samples):
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=41)
        vis = visibility_matrix(scan, detector, depth_samples, subpixel=4)
        assert np.any((vis > 0) & (vis < 1))

    def test_invalid_subpixel(self, detector, depth_samples):
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=11)
        with pytest.raises(ValidationError):
            visibility_matrix(scan, detector, depth_samples, subpixel=0)


class TestSimulateWireScan:
    def test_stack_shape_and_metadata(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 30.0, depth_samples, intensity=100.0)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=31)
        stack = simulate_wire_scan(field, scan, detector, metadata={"id": 1})
        assert stack.shape == (31, detector.n_rows, detector.n_cols)
        assert stack.metadata["id"] == 1

    def test_intensity_bounded_by_wire_free_image(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 30.0, depth_samples, intensity=100.0)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=31)
        stack = simulate_wire_scan(field, scan, detector)
        assert np.all(stack.images <= field.total_image()[None, :, :] + 1e-9)

    def test_occlusion_happens_during_scan(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 30.0, depth_samples, intensity=100.0)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=61)
        stack = simulate_wire_scan(field, scan, detector)
        # every pixel sees the emitter at the start of the scan and loses it
        # at some point (single-edge regime designed by design_scan_...)
        assert np.all(stack.images.min(axis=0) < stack.images.max(axis=0))

    def test_shape_mismatch_rejected(self, detector, depth_samples):
        other = Detector(n_rows=3, n_cols=3)
        field = DepthSourceField.point_source(other, 30.0, depth_samples)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=11)
        with pytest.raises(ValidationError):
            simulate_wire_scan(field, scan, detector)

    def test_non_canonical_beam_rejected(self, detector, depth_samples):
        field = DepthSourceField.point_source(detector, 30.0, depth_samples)
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=11)
        with pytest.raises(ValidationError):
            simulate_wire_scan(field, scan, detector, beam=Beam(direction=(0, 1, 0)))


class TestScanDesign:
    def test_single_edge_regime(self, detector):
        scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=51)
        travel = np.ptp(scan.positions[:, 1])
        assert 2.0 * scan.wire.radius > travel

    def test_depth_range_validation(self, detector):
        with pytest.raises(ValidationError):
            design_scan_for_depth_range(detector, (100.0, 0.0))

    def test_larger_detector_needs_longer_scan(self):
        small = Detector(n_rows=4, n_cols=4)
        large = Detector(n_rows=64, n_cols=4)
        scan_small = design_scan_for_depth_range(small, (0.0, 100.0))
        scan_large = design_scan_for_depth_range(large, (0.0, 100.0))
        assert np.ptp(scan_large.positions[:, 1]) > np.ptp(scan_small.positions[:, 1])

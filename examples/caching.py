"""Result caching & incremental batches: the second request is (nearly) free.

Run with::

    python examples/caching.py

What it does
------------
1. reconstructs a synthetic wire scan through a ``cached()`` session — the
   first run computes and stores, the second is a cache hit served
   bitwise-identical to the recompute (provenance included);
2. shows what invalidates a key: touching the source bytes and changing any
   config field both force a recompute, on their own new keys;
3. runs an **incremental batch**: after editing 1 of 4 files, ``run_many``
   recomputes exactly the changed file and serves the other three from the
   cache (``item.cached`` per item);
4. memoizes an analysis chain per (run key, pipeline signature);
5. corrupts a cache entry on purpose and shows it is repaired — deleted and
   recomputed — never served;
6. inspects and prunes the root the way ``repro-cache`` does.
"""

from __future__ import annotations

import os
import tempfile
import time

import repro
from repro.io.image_stack import save_wire_scan
from repro.synthetic import make_grain_sample_stack


def _timed(label, fn):
    start = time.perf_counter()
    value = fn()
    print(f"  {label}: {time.perf_counter() - start:.4f}s")
    return value


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_caching_")
    grid = repro.DepthGrid.from_range(0.0, 120.0, 48)
    sess = repro.session(grid=grid).cached(os.path.join(workdir, "cache"))

    # ------------------------------------------------------------------ #
    # 1. cold vs warm
    paths = []
    for index in range(4):
        stack, _source, _sample = make_grain_sample_stack(
            n_grains=2, n_rows=12, n_cols=12, n_positions=81, seed=20 + index
        )
        path = os.path.join(workdir, f"scan_{index}.h5lite")
        save_wire_scan(path, stack)
        paths.append(path)

    print("cold vs warm (same file, same config):")
    cold = _timed("cold run (computes + stores)", lambda: sess.run(paths[0]))
    warm = _timed("warm run (cache hit)       ", lambda: sess.run(paths[0]))
    assert warm.cache_stats.hit
    assert warm.result.data.tobytes() == cold.result.data.tobytes()
    assert warm.provenance() == cold.provenance()
    print(f"  hit key={warm.cache_stats.key[:12]}… "
          f"verified digest={warm.cache_stats.digest[:12]}…")

    # ------------------------------------------------------------------ #
    # 2. what invalidates
    different_config = sess.configure(intensity_cutoff=0.25).run(paths[0])
    assert not different_config.cache_stats.hit  # any config change: new key
    print("changed config field -> miss (recomputed on its own key)")

    # ------------------------------------------------------------------ #
    # 3. incremental batch: 1 of 4 files changed
    first = sess.run_many(paths)
    print(f"first batch:  {first.n_computed} computed, {first.n_cached} cached")
    stack, _source, _sample = make_grain_sample_stack(
        n_grains=3, n_rows=12, n_cols=12, n_positions=81, seed=99
    )
    save_wire_scan(paths[2], stack)  # edit one input
    stat = os.stat(paths[2])
    os.utime(paths[2], ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    second = sess.run_many(paths)
    print(f"second batch: {second.n_computed} computed, {second.n_cached} cached "
          f"-> {[item.cached for item in second.items]}")
    assert second.n_computed == 1 and second.n_cached == 3

    # ------------------------------------------------------------------ #
    # 4. memoized analysis
    outcome = warm.analyze("peaks", "grain_boundaries")
    again = sess.run(paths[0]).analyze("peaks", "grain_boundaries")
    assert outcome.to_json() == again.to_json()
    print("analysis memoized per (run key, pipeline signature)")

    # ------------------------------------------------------------------ #
    # 5. corruption is repaired, never served
    entry = warm.cache_stats.path
    with open(entry, "r+b") as fh:
        fh.write(b"garbage!")  # clobber the magic
    repaired = sess.run(paths[0])
    assert not repaired.cache_stats.hit  # recomputed, entry replaced
    assert repaired.result.data.tobytes() == cold.result.data.tobytes()
    assert sess.run(paths[0]).cache_stats.hit  # healthy again
    print("corrupt entry -> miss, deleted, recomputed, re-stored")

    # ------------------------------------------------------------------ #
    # 6. administration (what repro-cache does)
    stats = sess.cache.stats()
    print(f"cache root {stats['root']}: {stats['n_runs']} run entr(ies), "
          f"{stats['n_analyses']} analysis memo(s), {stats['total_bytes'] / 1e6:.2f} MB")
    print(f"verify: {sess.cache.verify()['n_repaired']} repaired")
    print(f"prune to zero: {sess.cache.prune(max_bytes=0)}")


if __name__ == "__main__":
    main()

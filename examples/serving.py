"""Reconstruction-as-a-service: drive a live ``repro-serve`` daemon.

Run with::

    python examples/serving.py

What it does
------------
1. boots a real serving daemon in-process (background thread, free port,
   private cache root) — the same daemon ``repro-serve`` runs standalone;
2. submits a reconstruction job over HTTP with the bundled
   :class:`repro.serve.ServeClient`, polls it to completion and fetches the
   result record (provenance + analysis);
3. resubmits the identical request and shows **cache-first admission**: the
   job completes at admission from the result cache, never touching the
   compute pool;
4. fires 6 concurrent identical submissions of a fresh file and shows
   **single-flight collapsing**: exactly one computation serves all six;
5. reads the ``/metrics`` endpoint — queue depth, cache hit rate, collapse
   counts, per-stage latency percentiles — and shuts the daemon down
   gracefully (the drain the SIGTERM path uses).
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import tempfile
import time

import repro
from repro.io.image_stack import save_wire_scan
from repro.serve import ServeClient, ServeSettings, start_in_thread
from repro.synthetic import make_grain_sample_stack


def _timed(label, fn):
    start = time.perf_counter()
    value = fn()
    print(f"  {label}: {time.perf_counter() - start:.4f}s")
    return value


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_serving_")
    paths = []
    for index in range(2):
        stack, _source, _sample = make_grain_sample_stack(
            n_grains=2, n_rows=12, n_cols=12, n_positions=81, seed=40 + index
        )
        path = os.path.join(workdir, f"scan_{index}.h5lite")
        save_wire_scan(path, stack)
        paths.append(path)

    # ------------------------------------------------------------------ #
    # 1. boot the daemon (port=0 picks a free port)
    settings = ServeSettings(
        port=0, workers=2, cache=os.path.join(workdir, "cache"), queue_depth=32
    )
    session = repro.session(grid=repro.DepthGrid.from_range(0.0, 120.0, 48))
    with start_in_thread(settings) as daemon:
        print(f"daemon listening at {daemon.base_url}")
        client = ServeClient(base_url=daemon.base_url, client_id="example")

        # -------------------------------------------------------------- #
        # 2. submit -> poll -> fetch
        print("\ncold submission (computes on the pool):")

        def _cold():
            accepted, result = client.submit_and_wait(
                paths[0], session=session, analyze=["peaks", "fwhm"]
            )
            return accepted, result

        accepted, result = _timed("submit + wait + fetch", _cold)
        job = client.status(accepted["job"]["id"])
        print(f"  admission: {accepted['dedup']!r}; served: {job['served']!r}")
        ops = [record["op"] for record in result["analysis"]["provenance"]["ops"]]
        print(f"  analysis ops computed server-side: {ops}")

        # -------------------------------------------------------------- #
        # 3. identical resubmission: cache-first admission
        print("\nwarm resubmission (cache-first admission):")
        accepted, _result = _timed(
            "submit + wait + fetch",
            lambda: client.submit_and_wait(paths[0], session=session,
                                           analyze=["peaks", "fwhm"]),
        )
        job = client.status(accepted["job"]["id"])
        print(f"  admission: {accepted['dedup']!r}; served: {job['served']!r}")

        # -------------------------------------------------------------- #
        # 4. single-flight: concurrent identical submissions compute once
        print("\n6 concurrent identical submissions of a fresh file:")
        before = client.metrics()["jobs"]["computed"]
        with concurrent.futures.ThreadPoolExecutor(6) as pool:
            payloads = list(pool.map(
                lambda _: client.submit(paths[1], session=session), range(6)
            ))
        for payload in payloads:
            client.wait(payload["job"]["id"], timeout_s=120)
        computed = client.metrics()["jobs"]["computed"] - before
        roles = sorted(p["dedup"] for p in payloads)
        print(f"  admissions: {roles}")
        print(f"  computations actually run: {computed} (single-flight)")

        # -------------------------------------------------------------- #
        # 5. the operator's view
        metrics = client.metrics()
        print("\n/metrics (abridged):")
        print(json.dumps({
            "jobs": metrics["jobs"],
            "queue": metrics["queue"],
            "cache": metrics["cache"],
            "singleflight": metrics["singleflight"],
            "latency_run_p90_s": metrics["latency"]["run"]["p90_s"],
        }, indent=2, sort_keys=True))
    print("\ndaemon drained and stopped")


if __name__ == "__main__":
    main()

"""Full simulated experiment: Laue diffraction of a grain column, file pipeline.

Run with::

    python examples/wire_scan_experiment.py [output_directory]

This example follows the original workflow end to end:

1. a columnar Cu sample with several grains at different depths is generated;
2. its polychromatic Laue pattern is computed and the wire-scan image stack
   is simulated and written to an h5lite container (the HDF5 stand-in the
   beamline acquisition would have produced);
3. the file-to-file pipeline (read → reconstruct on the simulated GPU →
   write depth-resolved container + text profiles) is run, exactly like the
   original program;
4. the recovered grain depths are compared with the ground truth.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import DepthGrid
from repro.core.config import ReconstructionConfig
from repro.core.session import session
from repro.io import load_depth_resolved, save_wire_scan
from repro.synthetic import make_grain_sample_stack

DEPTH_RANGE = (0.0, 120.0)


def main(output_dir: str | None = None) -> None:
    out_dir = Path(output_dir) if output_dir else Path(tempfile.mkdtemp(prefix="repro_experiment_"))
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1-2. sample + forward model + acquisition file
    print("simulating a Cu grain column and its wire scan ...")
    stack, source, sample = make_grain_sample_stack(
        material="Cu", n_grains=3, n_rows=32, n_cols=32, n_positions=201,
        depth_range=DEPTH_RANGE, seed=11,
    )
    boundaries = sample.true_grain_boundaries()
    print(f"  grains: {len(sample.grains)}, boundaries at "
          + ", ".join(f"{b:.1f}" for b in boundaries) + " um")
    scan_path = out_dir / "wire_scan.h5lite"
    save_wire_scan(scan_path, stack)
    print(f"  wrote acquisition file {scan_path} ({stack.nbytes / 1e6:.1f} MB)")

    # 3. the reconstruction pipeline (simulated-CUDA backend, like the paper)
    grid = DepthGrid.from_range(*DEPTH_RANGE, 60)
    config = ReconstructionConfig(grid=grid, backend="gpusim", layout="flat1d")
    depth_path = out_dir / "depth_resolved.h5lite"
    text_path = out_dir / "depth_profiles.txt"
    outcome = session(config=config).run(
        str(scan_path), output_path=str(depth_path), text_path=str(text_path)
    )
    print("\nreconstruction report:")
    print(outcome.report.summary())

    # 4. compare recovered depths with the ground truth
    result = load_depth_resolved(depth_path)
    truth_centroid = source.true_centroid_depth()
    recon_centroid = result.centroid_depth()
    bright = source.total_image() > 0.1 * source.total_image().max()
    valid = bright & np.isfinite(truth_centroid) & np.isfinite(recon_centroid)
    errors = np.abs(recon_centroid - truth_centroid)[valid]
    print(f"\nper-pixel depth accuracy over {valid.sum()} bright pixels:")
    print(f"  median |error| = {np.median(errors):.2f} um, "
          f"90th percentile = {np.percentile(errors, 90):.2f} um "
          f"(depth bin width {grid.step:.1f} um)")

    profile = result.integrated_profile()
    print("\nintegrated depth profile (| marks true grain boundaries):")
    top = profile.max()
    boundary_bins = {int(grid.depth_to_index(b)) for b in boundaries if grid.contains(b)}
    for k in range(grid.n_bins):
        bar = "#" * int(40 * profile[k] / top) if top > 0 else ""
        marker = " <-- grain boundary" if k in boundary_bins else ""
        print(f"  {grid.index_to_depth(k):6.1f} um | {bar}{marker}")
    print(f"\noutputs written to {out_dir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)

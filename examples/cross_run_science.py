"""Cross-run analysis: DAG pipelines, reduce ops, memoized re-analysis.

Run with::

    python examples/cross_run_science.py

What it does
------------
1. generates a small *sample* of synthetic wire-scan data sets with a
   planted power-law relation between the two detector halves;
2. reconstructs them all with ``Session.run_many`` against a private
   result cache;
3. runs a **DAG analysis graph** over the whole batch in one call:
   per-run nodes (``aperture_total``, ``zernike_moments`` and two custom
   registered ops) fan out over the items, then **reduce ops**
   (``scaling_fit``, ``integrated_estimate``, ``sample_stats``) consume
   the collected per-run outputs and recover the planted slope;
4. re-runs the same analysis and shows full memoization (every node is a
   memo hit), then changes one node's parameters and shows that only the
   dirty subgraph recomputes.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time

import numpy as np

import repro
from repro.core.ops import register_op
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_point_source_stack

PLANTED_SLOPE = 1.6
N_RUNS = 40


@register_op("left_total", description="integrated total of the left detector half")
def left_total(result):
    image = np.asarray(result.data, dtype=np.float64).sum(axis=0)
    return float(image[:, : image.shape[1] // 2].sum())


@register_op("right_total", description="integrated total of the right detector half")
def right_total(result):
    image = np.asarray(result.data, dtype=np.float64).sum(axis=0)
    return float(image[:, image.shape[1] // 2:].sum())


def make_sample(root: str) -> list:
    """Wire-scan files whose halves follow ``right = 0.7 * left ** 1.6``."""
    base, _source = make_point_source_stack(
        depth=40.0, n_rows=8, n_cols=8, n_positions=61
    )
    split = base.images.shape[2] // 2
    paths = []
    for index, x in enumerate(np.logspace(0.0, 1.5, N_RUNS)):
        images = base.images.copy()
        images[:, :, :split] *= x
        images[:, :, split:] *= 0.7 * x ** PLANTED_SLOPE
        path = f"{root}/run_{index:02d}.h5lite"
        save_wire_scan(path, dataclasses.replace(base, images=images))
        paths.append(path)
    return paths


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_cross_run_")
    paths = make_sample(workdir)
    print(f"sample: {len(paths)} synthetic wire scans in {workdir}")

    science = repro.graph(
        {"name": "x", "op": "left_total"},
        {"name": "y", "op": "right_total"},
        {"name": "tot", "op": "aperture_total"},
        {"name": "morph", "op": "zernike_moments", "params": {"n_max": 2}},
        {"name": "fit", "op": "scaling_fit", "inputs": ["x", "y"]},
        {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
         "params": {"key": "total"}},
        {"name": "stats", "op": "sample_stats", "inputs": ["tot"],
         "params": {"key": "total"}},
    )
    print("\nthe analysis graph:")
    print(science.describe())

    sess = repro.session(
        grid=repro.DepthGrid.from_range(0.0, 100.0, 30)
    ).cached(f"{workdir}/cache")

    start = time.perf_counter()
    batch = sess.run_many(paths, analyze=science)
    print(f"\nreconstructed + analysed {batch.n_ok} runs "
          f"in {time.perf_counter() - start:.2f}s")

    fit = batch.analysis["fit"]
    print(f"planted slope {PLANTED_SLOPE} -> recovered "
          f"{fit['slope']:.6f} (r^2 = {fit['r_squared']:.6f}, "
          f"scatter = {fit['scatter_dex']:.2e} dex)")
    est = batch.analysis["est"]
    print(f"integrated estimate: n={est['n']} total={est['total']:.1f} "
          f"median={est['median']:.1f}")
    stats = batch.analysis["stats"]
    print(f"sample stats: IQR={stats['iqr']:.1f}, "
          f"{stats['n_outliers']} outlier(s)")

    # --- warm re-analysis: every node value is served from the memo store
    warm = sess.run_many(paths, analyze=science)
    execution = warm.analysis.execution
    print(f"\nwarm re-analysis: {execution['n_memo_hits']} memo hit(s), "
          f"{execution['n_computed']} computed "
          f"in {execution['wall_time']:.3f}s")

    # --- dirty subgraph: shrink the aperture; only 'tot' and the reduces
    # that depend on it recompute, the fit chain stays fully memoized
    narrower = repro.graph(
        {"name": "x", "op": "left_total"},
        {"name": "y", "op": "right_total"},
        {"name": "tot", "op": "aperture_total",
         "params": {"radius_fraction": 0.5}},
        {"name": "morph", "op": "zernike_moments", "params": {"n_max": 2}},
        {"name": "fit", "op": "scaling_fit", "inputs": ["x", "y"]},
        {"name": "est", "op": "integrated_estimate", "inputs": ["tot"],
         "params": {"key": "total"}},
        {"name": "stats", "op": "sample_stats", "inputs": ["tot"],
         "params": {"key": "total"}},
    )
    dirty = sess.run_many(paths, analyze=narrower)
    execution = dirty.analysis.execution
    print(f"dirty subgraph (aperture changed): "
          f"{execution['n_memo_hits']} memo hit(s), "
          f"{execution['n_computed']} computed — only the aperture chain "
          f"re-ran")
    print(f"narrower aperture total: "
          f"{dirty.analysis['est']['total']:.1f}")


if __name__ == "__main__":
    main()

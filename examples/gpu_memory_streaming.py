"""Device-memory streaming and array-layout design space (Figs. 2 and 4).

Run with::

    python examples/gpu_memory_streaming.py

The paper's central engineering constraint is that the data set does not fit
in the Tesla M2070's 6 GB together with its temporaries, so the image cube is
streamed through the device a few detector rows at a time, and the array
layout determines how much PCIe traffic each chunk costs.

This example explores that design space on a synthetic workload:

* how the chunk plan reacts to different device-memory caps;
* what the flat 1-D layout vs the pointer-based 3-D layout cost in modelled
  transfer time (the Fig. 4 comparison);
* the computation/communication split the profiler records.
"""

from __future__ import annotations

from repro.core import session
from repro.core.chunking import plan_row_chunks
from repro.synthetic import make_benchmark_workload
from repro.utils.arrays import bytes_to_human


def main() -> None:
    workload = make_benchmark_workload("5.2G", scale=1.0 / 4096.0, seed=1)
    stack, grid = workload.stack, workload.grid
    print(f"workload: {workload.describe()}\n")

    # 1. chunk planning under different device-memory caps
    print("chunk plans for shrinking device-memory caps (flat 1-D layout):")
    for cap_mb in (64, 8, 2, 1):
        plan = plan_row_chunks(
            n_rows=stack.n_rows, n_cols=stack.n_cols, n_positions=stack.n_positions,
            n_depth_bins=grid.n_bins, device_memory_bytes=cap_mb * 1024**2,
        )
        print(f"  cap {cap_mb:>3} MB -> {plan.n_chunks:>3} chunk(s) of {plan.rows_per_chunk} row(s), "
              f"{bytes_to_human(plan.bytes_per_chunk)} per chunk")

    # 2. layouts: run the same reconstruction with both layouts on a small
    #    simulated device and compare the modelled device time
    print("\nlayout comparison on a 4 MB simulated device:")
    for layout in ("flat1d", "pointer3d"):
        sess = session(grid=grid).on(
            "gpusim", layout=layout, device_memory_limit=4 * 1024**2
        )
        report = sess.run(stack).report
        print(f"  {layout:<10s} chunks={report.n_chunks:<3d} launches={report.n_kernel_launches:<4d} "
              f"H2D={bytes_to_human(report.h2d_bytes):>9s}  "
              f"modelled: transfer {report.transfer_time * 1e3:7.2f} ms + compute {report.compute_time * 1e3:7.2f} ms "
              f"= {report.simulated_device_time * 1e3:7.2f} ms "
              f"(transfer fraction {report.transfer_fraction:.0%})")

    print("\nAs in the paper's Fig. 4, the pointer-based 3-D layout pays for the extra")
    print("pointer tables and per-slab copies in transfer time, so the flat 1-D layout wins.")

    # 3. rows-per-chunk sweep (the Fig. 2 "2 rows at a time" choice)
    print("\nrows-per-chunk sweep (modelled device seconds, flat 1-D layout):")
    for rows in (1, 2, 4, 8, None):
        sess = session(grid=grid).on(
            "gpusim", rows_per_chunk=rows, device_memory_limit=64 * 1024**2
        )
        report = sess.run(stack).report
        label = "auto" if rows is None else f"{rows:>4d}"
        print(f"  rows/chunk {label:>4s}: {report.n_chunks:>3d} chunks, "
              f"modelled {report.simulated_device_time * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()

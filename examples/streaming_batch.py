"""Out-of-core streaming and multi-file batch scheduling.

Run with::

    python examples/streaming_batch.py

What it does
------------
1. generates a few synthetic wire-scan files on disk;
2. reconstructs one of them twice — cube fully in memory, then streamed
   from disk a few detector rows at a time — and shows the results are
   bit-identical while the streamed run never held the full cube;
3. schedules the whole directory as a batch on a worker pool (one file is
   deliberately corrupt to show per-file error isolation) and prints the
   aggregated batch report.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core import DepthGrid, ReconstructionConfig, execute_backend
from repro.core.session import session
from repro.io import StreamingWireScanSource, save_wire_scan
from repro.perf.reporting import format_batch_table
from repro.synthetic.workloads import make_point_source_stack


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_batch_")
    grid = DepthGrid.from_range(0.0, 100.0, 40)

    # 1. a few scan files with emitters at different depths
    paths = []
    for index, depth in enumerate((25.0, 40.0, 60.0)):
        stack, _source = make_point_source_stack(depth=depth, n_rows=12, n_cols=8, n_positions=81)
        path = os.path.join(workdir, f"scan_{index}.h5lite")
        save_wire_scan(path, stack)
        paths.append(path)
    print(f"wrote {len(paths)} scan files to {workdir}")

    # 2. in-memory vs streamed: identical results, bounded memory
    config = ReconstructionConfig(grid=grid, backend="vectorized", rows_per_chunk=3)
    in_memory = session(config=config).run(paths[0])

    source = StreamingWireScanSource(paths[0])
    streamed_result, streamed_report = execute_backend(source, config)
    accounting = source.accounting()
    print(f"\nin-memory: {in_memory.report.wall_time:.4f} s wall")
    print(f"streamed:  {streamed_report.wall_time:.4f} s wall, "
          f"{streamed_report.n_chunks} chunk(s), "
          f"peak {accounting['max_resident_rows']} row(s) resident "
          f"of {source.n_rows} total")
    print(f"bit-identical: {np.array_equal(streamed_result.data, in_memory.result.data)}")

    # 3. batch the directory (with one corrupt file mixed in)
    broken = os.path.join(workdir, "broken.h5lite")
    with open(broken, "wb") as fh:
        fh.write(b"this is not a wire scan")
    batch = session(grid=grid, backend="vectorized").stream().run_many(
        paths + [broken],
        max_workers=3,
        output_dir=os.path.join(workdir, "depth"),
        keep_results=False,
    )
    print()
    print(format_batch_table(batch))


if __name__ == "__main__":
    main()

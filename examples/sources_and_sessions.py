"""One front door: ``repro.open()`` sources and the fluent ``repro.session()``.

Run with::

    python examples/sources_and_sessions.py

What it does
------------
1. simulates a small wire-scan stack and saves three copies as files;
2. opens the *same data* four different ways — in-memory stack, single
   file, glob of files, bare ndarray + geometry — and shows that one
   session API reconstructs them all;
3. forks an immutable session fluently (backend, layout, streaming) and
   proves the streamed file run is bit-identical to the in-memory run;
4. runs the glob as a batch through ``run_many`` and prints the aggregated
   report;
5. prints the run's JSON provenance record (config snapshot, plan,
   timings, source identity) — the observability payload every run carries.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.io import save_wire_scan
from repro.synthetic import make_point_source_stack


def main() -> None:
    stack, _source = make_point_source_stack(depth=40.0, n_rows=8, n_cols=6, n_positions=61)
    grid = repro.DepthGrid.from_range(0.0, 100.0, 40)

    workdir = tempfile.mkdtemp(prefix="repro_sources_")
    paths = []
    for index in range(3):
        path = os.path.join(workdir, f"scan_{index}.h5lite")
        save_wire_scan(path, stack)
        paths.append(path)
    print(f"wrote {len(paths)} scan files to {workdir}")

    # 1. one immutable session, forked fluently — each call returns a new one
    base = repro.session(grid=grid)
    gpu = base.on("gpusim", layout="pointer3d")
    streamed = gpu.stream(rows_per_chunk=4)
    print(f"base session backend:     {base.backend_name}")
    print(f"forked session backend:   {gpu.backend_name} "
          f"(layout={gpu.config.layout}, streaming={streamed.config.streaming})")

    # 2. source polymorphism: the same session runs anything repro.open() takes
    from_stack = gpu.run(repro.open(stack))
    from_file = gpu.run(paths[0])                     # open() is applied implicitly
    from_array = gpu.run(repro.open(
        stack.images, scan=stack.scan, detector=stack.detector, beam=stack.beam
    ))
    from_stream = streamed.run(paths[0])
    print("\nsame data, four sources, one API:")
    for label, run in [("stack", from_stack), ("file", from_file),
                       ("ndarray", from_array), ("file (streamed)", from_stream)]:
        identical = np.array_equal(run.result.data, from_stack.result.data)
        print(f"  {label:<16s} kind={run.source['kind']:<6s} "
              f"wall={run.report.wall_time:.4f}s bit-identical={identical}")

    # 3. a glob is a batch: run_many schedules it on a worker pool
    batch = streamed.run_many(os.path.join(workdir, "scan_*.h5lite"),
                              max_workers=3, keep_results=False)
    print(f"\nbatch: {batch.n_ok}/{batch.n_files} ok, "
          f"{batch.throughput_files_per_second:.1f} files/s "
          f"on {batch.max_workers} workers")

    # 4. every run carries its provenance — reproducible from the snapshot
    print("\nprovenance record of the streamed run:")
    print(from_stream.to_json())

    snapshot = from_stream.config.to_dict()
    replay = repro.session(config=repro.ReconstructionConfig.from_dict(snapshot)).run(paths[0])
    print(f"\nreplayed from config snapshot, bit-identical: "
          f"{np.array_equal(replay.result.data, from_stream.result.data)}")

    # 5. the pluggable registry behind .on(...)
    print("\nregistered backends:")
    for info in repro.backends():
        flags = "+streaming" if info.supports_streaming else "-streaming"
        print(f"  {info.name:<14s} {flags:<11s} {info.description}")


if __name__ == "__main__":
    main()

"""Paper-scale performance modelling (Figs. 8 and 9 at the original sizes).

Run with::

    python examples/performance_model.py

The measured benchmarks in ``benchmarks/`` run on cubes thousands of times
smaller than the paper's 2.1-5.2 GB data sets.  This example evaluates the
analytic host/device cost models at the paper's full sizes and prints the
modelled Fig. 8 / Fig. 9 series next to the numbers reported in the paper, so
the reader can judge how well the simple roofline + PCIe + serial-host model
explains the published trends.
"""

from __future__ import annotations

from repro.perf.modelruns import (
    PAPER_FIG8_CPU_SECONDS,
    PAPER_FIG8_GPU_SECONDS,
    PAPER_FIG9_CPU_SECONDS,
    PAPER_FIG9_GPU_SECONDS,
    predict_figure8,
    predict_figure9,
)


def main() -> None:
    print("Fig. 8 — CPU vs GPU total time vs data-set size (seconds)")
    print(f"{'dataset':<10s}{'paper CPU':>12s}{'model CPU':>12s}{'paper GPU':>12s}{'model GPU':>12s}"
          f"{'paper ratio':>13s}{'model ratio':>13s}")
    fig8 = predict_figure8()
    for label, prediction in fig8.items():
        paper_cpu = PAPER_FIG8_CPU_SECONDS[label]
        paper_gpu = PAPER_FIG8_GPU_SECONDS[label]
        print(f"{label:<10s}{paper_cpu:12.0f}{prediction.cpu_seconds:12.0f}"
              f"{paper_gpu:12.0f}{prediction.gpu_seconds:12.0f}"
              f"{paper_gpu / paper_cpu:13.2f}{prediction.gpu_over_cpu:13.2f}")

    print("\nFig. 9 — CPU vs GPU total time vs pixel percentage on the 5.2G set (seconds)")
    print(f"{'pixels':<10s}{'paper CPU':>12s}{'model CPU':>12s}{'paper GPU':>12s}{'model GPU':>12s}")
    fig9 = predict_figure9()
    for label, prediction in fig9.items():
        print(f"{label:<10s}{PAPER_FIG9_CPU_SECONDS[label]:12.0f}{prediction.cpu_seconds:12.0f}"
              f"{PAPER_FIG9_GPU_SECONDS[label]:12.0f}{prediction.gpu_seconds:12.0f}")

    print("\nReading the model:")
    print("  * both versions pay the same serial host cost (HDF5 reading, setup, writing),")
    print("    which is why the paper's GPU totals are hundreds of seconds, not seconds;")
    print("  * the CPU version adds a per-element scalar reconstruction cost that grows")
    print("    linearly with the cube, so its total rises much faster with data size;")
    print("  * the GPU version adds PCIe transfers plus a roofline kernel time, both of")
    print("    which are small — hence the flattening curve the paper calls scalability.")


if __name__ == "__main__":
    main()

"""Grain depth profiling: recover a multi-grain depth structure with noise.

Run with::

    python examples/grain_depth_profiling.py

The scientific use case behind the depth reconstruction: a polycrystalline
column is illuminated along the micro-beam and the analysis must say *which
depth* each diffraction signal comes from, so that grain shapes, orientation
gradients and strains can be mapped in 3-D.

This example builds a three-grain Cu column, simulates a noisy wire scan,
reconstructs it with every backend and reports per-grain depth accuracy and
cross-backend agreement.
"""

from __future__ import annotations

import numpy as np

from repro.core import DepthGrid, session
from repro.synthetic import apply_poisson, make_grain_sample_stack

DEPTH_RANGE = (0.0, 120.0)


def main() -> None:
    stack, source, sample = make_grain_sample_stack(
        material="Cu", n_grains=3, n_rows=40, n_cols=40, n_positions=241,
        depth_range=DEPTH_RANGE, seed=21,
    )
    rng = np.random.default_rng(0)
    noisy_stack = apply_poisson(stack, rng, scale=2.0)

    grid = DepthGrid.from_range(*DEPTH_RANGE, 60)
    print("grains (ground truth):")
    for index, grain in enumerate(sample.grains):
        print(f"  grain {index}: depth {grain.depth_start:6.1f} - {grain.depth_stop:6.1f} um, "
              f"emission {grain.emission:.0f}")

    # reconstruct with every backend and measure agreement
    sess = session(grid=grid, backend="vectorized")
    results = sess.compare(noisy_stack, ["cpu_reference", "vectorized", "gpusim"])
    reference = results["cpu_reference"].result
    print("\nbackend agreement and timing:")
    for name, run in results.items():
        max_dev = float(np.max(np.abs(run.result.data - reference.data)))
        print(f"  {name:<14s} wall {run.report.wall_time:7.3f} s   max |dev| vs cpu_reference {max_dev:.2e}")

    # per-grain recovered intensity share
    result = results["vectorized"].result
    profile = result.integrated_profile()
    print("\nintegrated intensity per grain depth interval (reconstructed vs true):")
    true_profile = source.source.sum(axis=(1, 2))
    for index, grain in enumerate(sample.grains):
        in_grain = (grid.centers >= grain.depth_start) & (grid.centers < grain.depth_stop)
        true_in_grain = (source.depth_samples >= grain.depth_start) & (source.depth_samples < grain.depth_stop)
        recon_share = profile[in_grain].sum() / profile.sum() if profile.sum() > 0 else 0.0
        true_share = true_profile[true_in_grain].sum() / true_profile.sum()
        print(f"  grain {index}: reconstructed {recon_share:6.1%} of intensity, true {true_share:6.1%}")

    # per-pixel depth accuracy on the bright (diffracting) pixels
    truth = source.true_centroid_depth()
    recon = result.centroid_depth()
    bright = source.total_image() > 0.1 * source.total_image().max()
    valid = bright & np.isfinite(truth) & np.isfinite(recon)
    errors = np.abs(recon - truth)[valid]
    print(f"\nnoisy-data depth accuracy over {valid.sum()} bright pixels: "
          f"median |error| {np.median(errors):.2f} um, depth bin {grid.step:.1f} um")


if __name__ == "__main__":
    main()

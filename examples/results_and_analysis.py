"""Results-side symmetry: persistent ``RunResult`` round-trips and analysis ops.

Run with::

    python examples/results_and_analysis.py

What it does
------------
1. reconstructs a synthetic two-grain sample;
2. saves the run — the h5lite file embeds the *full* run record (config
   snapshot, report, timings, source identity, output paths) as a JSON
   attribute — and loads it back with ``repro.load()``, proving the
   round-trip is lossless;
3. builds an immutable analysis pipeline from named ops
   (``repro.analysis("peaks", "fwhm", ...)``), applies it to the live run
   and to the saved file, and shows both produce the identical JSON record;
4. registers an out-of-tree op and uses it next to the built-ins;
5. fans the pipeline out over a batch (per-item error capture included),
   persists the whole batch with ``save_all`` and resurrects it with
   ``BatchRunResult.load_dir``.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.synthetic import make_grain_sample_stack


def main() -> None:
    stack, _source, sample = make_grain_sample_stack(
        n_grains=2, n_rows=12, n_cols=12, n_positions=81, seed=11
    )
    grid = repro.DepthGrid.from_range(0.0, 120.0, 48)
    workdir = tempfile.mkdtemp(prefix="repro_results_")

    # 1. reconstruct (and analyze in the same call)
    run = repro.session(grid=grid).run(stack, analyze=["peaks", "fwhm"])
    print("reconstructed:", run.report.summary().splitlines()[0])
    print("inline analysis:", run.analysis.values)

    # 2. save → load is lossless
    path = os.path.join(workdir, "depth.h5lite")
    loaded = repro.load(run.save(path).output_path)
    assert loaded.result.data.tobytes() == run.result.data.tobytes()
    assert loaded.config == run.config
    print(f"round-trip OK: {path}")
    print("  loaded backend:", loaded.report.backend,
          "| created_unix:", loaded.created_unix)

    # 3. one immutable pipeline, three targets — identical JSON from file
    pipeline = repro.analysis("peaks", ("grain_boundaries", {"smooth_bins": 5}), "fwhm")
    print("pipeline:", pipeline.describe())
    from_run = pipeline.apply(run)
    from_file = pipeline.apply(path)
    assert from_run.to_json() == from_file.to_json()
    boundaries = from_run["grain_boundaries"]
    print("estimated grain boundaries:", np.round(boundaries, 1).tolist())
    print("true grain boundaries:     ",
          [round(float(b), 1) for b in sample.true_grain_boundaries()])

    # 4. out-of-tree ops are first-class citizens
    @repro.register_op("peak_count", description="number of resolved peaks")
    def peak_count(result, min_relative_height=0.1):
        from repro.core.analysis import find_profile_peaks

        return len(find_profile_peaks(
            result.integrated_profile(), result.grid,
            min_relative_height=min_relative_height,
        ))

    print("peak_count:", run.analyze("peak_count")["peak_count"])
    repro.unregister_op("peak_count")

    # 5. batch: fan-out analysis + whole-batch persistence
    batch = repro.session(grid=grid).run_many([stack, stack])
    fanned = repro.analysis("fwhm").apply(batch)
    print(f"batch analysis: {fanned.n_ok} ok / {fanned.n_failed} failed")
    out_dir = os.path.join(workdir, "runs")
    batch.save_all(out_dir)
    resurrected = repro.BatchRunResult.load_dir(out_dir)
    print(f"resurrected batch: {resurrected.n_ok} run(s) from {out_dir}, "
          f"shared config: {resurrected.config is not None}")


if __name__ == "__main__":
    main()

"""Quickstart: simulate a tiny wire scan and depth-reconstruct it.

Run with::

    python examples/quickstart.py

What it does
------------
1. builds the canonical 34-ID-style geometry (detector above the sample,
   wire scanning just above the surface);
2. places a single emitter at a known depth (40 um) along the beam;
3. simulates the wire-scan image stack with the forward model;
4. reconstructs the depth-resolved intensity with two backends (host
   vectorised and the simulated-CUDA design) and verifies they agree;
5. prints the recovered depth profile next to the ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core import DepthGrid, session
from repro.geometry import Beam, Detector
from repro.synthetic import DepthSourceField, design_scan_for_depth_range, simulate_wire_scan

TRUE_DEPTH_UM = 40.0


def main() -> None:
    # 1. geometry: a small detector is enough for a quick look
    detector = Detector(n_rows=16, n_cols=8, pixel_size=200.0, distance=510_000.0)
    beam = Beam()

    # 2. ground truth: a point emitter at 40 um depth seen by every pixel
    depth_samples = np.linspace(0.0, 100.0, 200, endpoint=False) + 0.25
    source = DepthSourceField.point_source(detector, TRUE_DEPTH_UM, depth_samples, intensity=1000.0)

    # 3. wire scan + forward model
    scan = design_scan_for_depth_range(detector, (0.0, 100.0), n_points=161)
    stack = simulate_wire_scan(source, scan, detector, beam)
    print(f"simulated stack: {stack.n_positions} images of {stack.n_rows}x{stack.n_cols} pixels "
          f"({stack.nbytes / 1e6:.2f} MB)")

    # 4. reconstruct with two backends through the fluent session and cross-check
    grid = DepthGrid.from_range(0.0, 100.0, 50)
    sess = session(grid=grid)
    run_vec = sess.on("vectorized").run(stack)
    run_gpu = sess.on("gpusim").run(stack)
    result_vec, report_vec = run_vec.result, run_vec.report
    result_gpu, report_gpu = run_gpu.result, run_gpu.report
    agreement = np.allclose(result_vec.data, result_gpu.data, rtol=1e-9, atol=1e-12)
    print(f"\nvectorized backend: {report_vec.wall_time:.3f} s wall")
    print(f"gpusim backend:     {report_gpu.wall_time:.3f} s wall "
          f"({report_gpu.n_chunks} chunk(s), modelled device time {report_gpu.simulated_device_time * 1e3:.2f} ms)")
    print(f"backends agree: {agreement}")

    # 5. recovered depth profile
    profile = result_vec.integrated_profile()
    peak_depth = grid.index_to_depth(int(np.argmax(profile)))
    print(f"\ntrue emitter depth:      {TRUE_DEPTH_UM:.1f} um")
    print(f"reconstructed peak depth: {peak_depth:.1f} um "
          f"(bin width {grid.step:.1f} um)")

    print("\ndepth profile (integrated over the detector):")
    top = profile.max()
    for k in range(grid.n_bins):
        bar = "#" * int(40 * profile[k] / top) if top > 0 else ""
        print(f"  {grid.index_to_depth(k):6.1f} um | {bar}")


if __name__ == "__main__":
    main()

"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build an editable wheel), and installs the runtime race sanitizer when the
``REPRO_RACE_SANITIZER=1`` lane is active — instrumentation must happen in
``pytest_configure``, before any test module imports (and thereby
instantiates) the lock-owning shared classes.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    from repro.staticcheck import sanitizer

    if sanitizer.enabled():
        names = sanitizer.install()
        sys.stderr.write(
            "repro race sanitizer: instrumented " + ", ".join(names) + "\n"
        )
